package rig

import (
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/client"
	"repro/internal/proto"
	"repro/internal/trace"
)

// countKind tallies spans of one kind.
func countKind(spans []trace.Span, kind trace.Kind) int {
	n := 0
	for _, s := range spans {
		if s.Kind == kind {
			n++
		}
	}
	return n
}

// TestWorkloadDriverTrace runs the closed-loop workload driver over a
// traced rig and checks the full-trace invariants plus the span anatomy
// of the resolution path: one client-op root per request, each with a
// send that reaches a serve and a reply, with prefix forwards in
// between.
func TestWorkloadDriverTrace(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Users = []string{"mann"}
	cfg.Trace = true
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const clients, requests = 3, 4
	wcs := make([]*WorkloadClient, 0, clients)
	for i := 0; i < clients; i++ {
		sess, err := r.NewSession(r.WS[0])
		if err != nil {
			t.Fatal(err)
		}
		wcs = append(wcs, &WorkloadClient{
			Session:  sess,
			Requests: requests,
			Op: func(s *client.Session, iter int) error {
				_, err := s.ReadFile("[home]welcome.txt")
				return err
			},
		})
	}
	res := RunWorkload(wcs)
	for i, st := range res.Clients {
		if st.Errors != 0 {
			t.Fatalf("client %d failed %d requests", i, st.Errors)
		}
	}
	if err := r.CheckTrace(); err != nil {
		t.Fatal(err)
	}
	spans := r.Tracer.Snapshot()
	if got := countKind(spans, trace.KindClientOp); got < clients*requests {
		t.Fatalf("client-op spans = %d, want at least %d", got, clients*requests)
	}
	// Every ReadFile is open + read(s) + close, each with a send/serve/
	// reply triple; the open routes through the prefix server, so
	// forward spans must appear too.
	for _, k := range []trace.Kind{trace.KindSend, trace.KindServe, trace.KindReply} {
		if got := countKind(spans, k); got < clients*requests*3 {
			t.Fatalf("%s spans = %d, want at least %d", k, got, clients*requests*3)
		}
	}
	if got := countKind(spans, trace.KindForward); got < clients*requests {
		t.Fatalf("forward spans = %d, want at least %d (prefix rewrites)", got, clients*requests)
	}
	if got := countKind(spans, trace.KindWire); got == 0 {
		t.Fatal("no wire spans recorded")
	}
	if frames := r.Tracer.Frames(); len(frames) == 0 {
		t.Fatal("no wire frames recorded")
	}
}

// chaosTraceRun drives the PR 1 chaos schedule over a traced, resilient
// rig and returns the session stats plus the checked span snapshot.
func chaosTraceRun(t *testing.T) (client.ResilienceStats, []trace.Span) {
	t.Helper()
	policy := client.DefaultRetryPolicy()
	cfg := Config{Users: []string{"mann"}, Seed: 7, Retry: &policy, Trace: true}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := r.WS[0].Session
	s.EnableNameCache(true)
	// The A10 chaos profile: fs1 outages plus near-total loss pulses, the
	// schedule that actually provokes retransmit exhaustion and rebinds.
	eng := r.NewChaos(chaos.Generate(2026, chaos.Profile{
		Duration:           2 * time.Second,
		Hosts:              []string{"fs1"},
		MeanOutageEvery:    500 * time.Millisecond,
		OutageLength:       200 * time.Millisecond,
		MeanLossPulseEvery: 900 * time.Millisecond,
		LossPulseLength:    120 * time.Millisecond,
		LossRate:           0.9,
	}))
	s.SetRetryObserver(eng.AdvanceTo)
	for i := 0; i < 120; i++ {
		eng.AdvanceTo(s.Proc().Now())
		if f, err := s.Open("[bin]hello", proto.ModeRead); err == nil {
			_ = f.Close()
		}
		s.Proc().ChargeCompute(10 * time.Millisecond)
	}
	eng.Finish()
	// If the schedule left fs1 down, wait for the dying team's exit
	// event before snapshotting — team death is asynchronous real time.
	r.DrainFS1()
	if err := r.CheckTrace(); err != nil {
		t.Fatalf("trace under chaos violates invariants: %v", err)
	}
	return s.ResilienceStats(), r.Tracer.Snapshot()
}

// TestTraceUnderChaos asserts the recovery machinery is visible in the
// trace: retries appear as extra attempt spans under their client-op
// root, each preceded by backoff and rebind spans, failed attempts carry
// a failure classification, and despite crashes and packet loss no span
// leaks (r.CheckTrace inside chaosTraceRun enforces that under -race).
func TestTraceUnderChaos(t *testing.T) {
	stats, spans := chaosTraceRun(t)
	if stats.Retries == 0 {
		t.Fatal("chaos schedule provoked no retries; the trace assertions below would be vacuous")
	}
	byID := make(map[trace.SpanID]trace.Span, len(spans))
	for _, sp := range spans {
		byID[sp.ID] = sp
	}
	attempts, backoffs, rebinds, failedAttempts := 0, 0, 0, 0
	for _, sp := range spans {
		switch sp.Kind {
		case trace.KindAttempt, trace.KindBackoff, trace.KindRebind:
			if p := byID[sp.Parent]; p.Kind != trace.KindClientOp {
				t.Fatalf("%s span %d parents under %q, want client-op", sp.Kind, sp.ID, p.Kind)
			}
		}
		switch sp.Kind {
		case trace.KindAttempt:
			attempts++
			if sp.Err != "" {
				failedAttempts++
			}
		case trace.KindBackoff:
			backoffs++
		case trace.KindRebind:
			rebinds++
		}
	}
	// One attempt per op plus one per retry; one backoff and one rebind
	// per retry.
	if want := stats.Ops + stats.Retries; attempts != want {
		t.Fatalf("attempt spans = %d, want %d (ops %d + retries %d)", attempts, want, stats.Ops, stats.Retries)
	}
	if backoffs != stats.Retries || rebinds != stats.Retries {
		t.Fatalf("backoff/rebind spans = %d/%d, want %d each", backoffs, rebinds, stats.Retries)
	}
	if failedAttempts == 0 {
		t.Fatal("no attempt span carries a failure classification")
	}
	// Host crashes must be distinguishable from the trace alone: some
	// span records the host-down class, and the dying server teams left
	// classified server-exit events.
	classes := make(map[string]int)
	for _, sp := range spans {
		if sp.Err != "" {
			classes[sp.Err]++
		}
	}
	if classes["host-down"] == 0 && classes["unreachable"] == 0 && classes["nonexistent-process"] == 0 {
		t.Fatalf("no transport-failure classification in trace; classes = %v", classes)
	}
	if countKind(spans, trace.KindServerExit) == 0 {
		t.Fatal("no server-exit event recorded for the crashed file server")
	}
}

// TestTraceUnderChaosDeterministic runs the chaos trace twice: same
// seeds, same schedule — identical span counts and identical failure
// classification histograms.
func TestTraceUnderChaosDeterministic(t *testing.T) {
	statsA, spansA := chaosTraceRun(t)
	statsB, spansB := chaosTraceRun(t)
	if statsA != statsB {
		t.Fatalf("session stats differ: %+v vs %+v", statsA, statsB)
	}
	if len(spansA) != len(spansB) {
		t.Fatalf("span counts differ: %d vs %d", len(spansA), len(spansB))
	}
	hist := func(spans []trace.Span) map[string]int {
		h := make(map[string]int)
		for _, sp := range spans {
			h[string(sp.Kind)+"/"+sp.Err]++
		}
		return h
	}
	ha, hb := hist(spansA), hist(spansB)
	for k, v := range ha {
		if hb[k] != v {
			t.Fatalf("kind/class histogram differs at %q: %d vs %d", k, v, hb[k])
		}
	}
}
