// Population-scale Zipf resolution workload (PROTOCOL.md §14): the
// open-loop counterpart of the shared-prefix topology, driving
// resolution against a prefix table of 10³–10⁶ names instead of one
// hot name per shard.
//
// One central prefix server holds a popgen population, every name bound
// statically to one of the shard file servers (round-robin by
// popularity rank). Each shard hosts co-resident clients that draw
// Zipf-distributed ranks over the whole population, snapped to the
// nearest co-shard rank — popularity skew is preserved, the resolution
// control plane (misses, lease grants) is fully shared at the central
// server, but the resolved data route always lands on the co-resident
// shard server. That last property is the engine-equivalence invariant
// sharedprefix.go established: a shard's file server receives traffic
// from its own lane only, so lease-hit operations proved Confined can
// run ahead without reordering any server another lane observes. The
// head of the popularity distribution lives in client lease caches
// while the tail misses to the prefix server (or the interposed ncache
// tier). Arrivals
// are open-loop: each client follows a pre-generated virtual-time
// arrival schedule (WorkloadClient.Arrive), and the recorded latency of
// an operation is completion minus scheduled arrival — queueing delay
// included — which is the population-scale latency a closed think loop
// structurally cannot observe.
package rig

import (
	"fmt"
	"time"

	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/fileserver"
	"repro/internal/flight"
	"repro/internal/kernel"
	"repro/internal/ncache"
	"repro/internal/netsim"
	"repro/internal/popgen"
	"repro/internal/prefix"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// ZipfConfig shapes a population-scale resolution workload.
type ZipfConfig struct {
	// Population is the number of names bound on the prefix server.
	Population int
	// Skew is the Zipf popularity exponent (0 = uniform; may be < 1).
	Skew float64
	// Pop, when non-nil, supplies a pre-generated population (so
	// several legs over the same population share one generation pass).
	// It must have been built with NewPopulation(Population, Skew, seed
	// PopSeed).
	Pop *popgen.Population
	// PopSeed selects the population's name-shape stream.
	PopSeed uint64
	// Shards is the number of file-server shards (= engine lanes).
	Shards int
	// ClientsPerShard is the number of co-resident clients per shard.
	ClientsPerShard int
	// Arrivals is each client's open-loop arrival quota.
	Arrivals int
	// Interarrival is the mean per-client virtual inter-arrival gap.
	Interarrival time.Duration
	// Lease is the prefix server's lease length (must be positive: the
	// workload resolves through the lease cache).
	Lease time.Duration
	// CacheTier interposes the shared ncache tier on the prefix host.
	CacheTier bool
	// AutoTuneMax, when positive, auto-tunes per-name lease lengths in
	// [Lease, AutoTuneMax] (PROTOCOL.md §15) instead of granting the
	// fixed Lease.
	AutoTuneMax time.Duration
	// Seed drives the network's deterministic RNG.
	Seed int64
	// Trace installs a domain tracer on the kernel and network.
	Trace bool
	// TraceSample, when non-nil, installs the tracer in sampled mode
	// (PROTOCOL.md §15): O(k) retained spans at any population. Implies
	// Trace.
	TraceSample *trace.SampleConfig
}

// ZipfWorkload is the booted population-scale topology.
type ZipfWorkload struct {
	Kernel     *kernel.Kernel
	Net        *netsim.Network
	PrefixHost *kernel.Host
	Prefix     *prefix.Server
	// Tier is the shared intermediate cache (nil unless CacheTier).
	Tier *ncache.Tier
	// Tracer is the installed tracer (nil unless Trace).
	Tracer *trace.Tracer
	// Flight is the workload's always-on flight recorder (PROTOCOL.md
	// §15); seal it at fences with SealFlightAtFences.
	Flight  *flight.Recorder
	Hosts   []*kernel.Host
	Shards  []*fileserver.FileServer
	Clients []*WorkloadClient
	// Pop is the bound population (rank order).
	Pop *popgen.Population
	// Draws[c][i] is client c's i-th drawn name in bracketed syntax.
	Draws [][]string
	// Schedule[c][i] is client c's i-th scheduled virtual arrival.
	Schedule [][]time.Duration
	// Latencies[c][i] is the open-loop latency (virtual completion
	// minus scheduled arrival) of client c's i-th operation, filled in
	// as the workload runs.
	Latencies [][]time.Duration
}

// Sessions returns the clients' naming sessions in client order.
func (zw *ZipfWorkload) Sessions() []*client.Session {
	out := make([]*client.Session, len(zw.Clients))
	for i, c := range zw.Clients {
		out[i] = c.Session
	}
	return out
}

// OpenLoopSpan returns the workload's observed span: the first
// scheduled arrival and the latest virtual completion.
func (zw *ZipfWorkload) OpenLoopSpan() (first, last time.Duration) {
	for c := range zw.Schedule {
		for i, arr := range zw.Schedule[c] {
			if (c == 0 && i == 0) || arr < first {
				first = arr
			}
			if done := arr + zw.Latencies[c][i]; done > last {
				last = done
			}
		}
	}
	return first, last
}

// NewZipfWorkload boots the topology: one prefix host carrying the full
// population (plus the optional ncache tier), Shards file-server hosts
// with ClientsPerShard lease-caching clients each, and per-client draw
// and arrival schedules pre-generated on deterministic streams keyed by
// global client index — so the sequential and sharded-engine drivers
// consume identical workloads.
func NewZipfWorkload(cfg ZipfConfig) (*ZipfWorkload, error) {
	if cfg.Population <= 0 || cfg.Shards <= 0 || cfg.ClientsPerShard <= 0 || cfg.Arrivals <= 0 {
		return nil, fmt.Errorf("zipf workload: population, shards, clients and arrivals must be positive")
	}
	if cfg.Population < cfg.Shards {
		return nil, fmt.Errorf("zipf workload: population %d smaller than %d shards", cfg.Population, cfg.Shards)
	}
	if cfg.Lease <= 0 {
		return nil, fmt.Errorf("zipf workload: lease length must be positive")
	}
	if cfg.Interarrival <= 0 {
		return nil, fmt.Errorf("zipf workload: interarrival must be positive")
	}
	pop := cfg.Pop
	if pop == nil {
		pop = popgen.NewPopulation(cfg.Population, cfg.Skew, cfg.PopSeed)
	} else if len(pop.Names) != cfg.Population || pop.Skew != cfg.Skew {
		return nil, fmt.Errorf("zipf workload: supplied population is %d names skew %v, config wants %d skew %v",
			len(pop.Names), pop.Skew, cfg.Population, cfg.Skew)
	}

	net := netsim.New(vtime.DefaultModel(), cfg.Seed)
	k := kernel.New(net)
	zw := &ZipfWorkload{Kernel: k, Net: net, Pop: pop}
	zw.Flight = flight.New(1 << 14)
	k.SetFlight(zw.Flight)
	if cfg.TraceSample != nil {
		zw.Tracer = trace.NewSampled(*cfg.TraceSample)
		k.SetTracer(zw.Tracer)
		net.SetRecorder(zw.Tracer)
	} else if cfg.Trace {
		zw.Tracer = trace.New()
		k.SetTracer(zw.Tracer)
		net.SetRecorder(zw.Tracer)
	}

	zw.PrefixHost = k.NewHost("nexus")
	popt := prefix.WithLease(cfg.Lease)
	if cfg.AutoTuneMax > 0 {
		popt = prefix.WithLeaseAutoTune(cfg.Lease, cfg.AutoTuneMax)
	}
	ps, err := prefix.Start(zw.PrefixHost, "pop", popt)
	if err != nil {
		return nil, fmt.Errorf("prefix server: %w", err)
	}
	zw.Prefix = ps
	resolver := ps.PID()
	if cfg.CacheTier {
		tier, err := ncache.Start(zw.PrefixHost, "ncache", ps.PID(), cfg.Lease)
		if err != nil {
			return nil, fmt.Errorf("cache tier: %w", err)
		}
		zw.Tier = tier
		resolver = tier.PID()
	}

	for s := 0; s < cfg.Shards; s++ {
		host := k.NewHost(fmt.Sprintf("shard%d", s))
		host.SetShard(s)
		fs, err := fileserver.Start(host, fmt.Sprintf("fs%d", s))
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
		zw.Hosts = append(zw.Hosts, host)
		zw.Shards = append(zw.Shards, fs)
	}
	// Bind the whole population: rank r lives on shard r mod Shards, so
	// every shard carries its share of the popularity head and tail.
	for r, name := range pop.Names {
		if err := ps.Define(name, zw.Shards[r%cfg.Shards].RootPair()); err != nil {
			return nil, fmt.Errorf("rank %d (%q): %w", r, name, err)
		}
	}

	nclients := cfg.Shards * cfg.ClientsPerShard
	zw.Draws = make([][]string, nclients)
	zw.Schedule = make([][]time.Duration, nclients)
	zw.Latencies = make([][]time.Duration, nclients)
	for s := 0; s < cfg.Shards; s++ {
		host := zw.Hosts[s]
		fs := zw.Shards[s]
		for c := 0; c < cfg.ClientsPerShard; c++ {
			ci := s*cfg.ClientsPerShard + c
			proc, err := host.NewProcess(fmt.Sprintf("pop%d-%d", s, c))
			if err != nil {
				return nil, fmt.Errorf("shard %d client %d: %w", s, c, err)
			}
			sess := client.New(proc, resolver, fs.RootPair(), "pop")
			if err := sess.EnableLeaseCache(); err != nil {
				return nil, fmt.Errorf("shard %d client %d lease cache: %w", s, c, err)
			}
			// Draw and arrival streams are keyed by global client index:
			// identical across hierarchy variants and driver engines.
			sampler := pop.Sampler(uint64(ci) + 1)
			draws := make([]string, cfg.Arrivals)
			for i := range draws {
				// Snap the drawn rank to this shard's congruence class:
				// rank r and its snapped neighbor have near-identical
				// popularity, so the skew survives, and every draw's
				// binding is the co-resident shard server (see the
				// package comment for why equivalence needs this).
				r := sampler.NextRank()
				idx := r - r%cfg.Shards + s
				if idx >= cfg.Population {
					idx -= cfg.Shards
				}
				draws[i] = prefix.Quote(pop.Names[idx])
			}
			sched := popgen.Arrivals(cfg.Arrivals, 0, cfg.Interarrival, uint64(ci)+1)
			lats := make([]time.Duration, cfg.Arrivals)
			zw.Draws[ci] = draws
			zw.Schedule[ci] = sched
			zw.Latencies[ci] = lats
			zw.Clients = append(zw.Clients, &WorkloadClient{
				Session:  sess,
				Requests: cfg.Arrivals,
				Lane:     s,
				Arrive:   func(iter int) time.Duration { return sched[iter] },
				Op: func(s *client.Session, iter int) error {
					_, err := s.MapContext(draws[iter])
					lats[iter] = s.Proc().Now() - sched[iter]
					return err
				},
				Classify: confinedOnLeasedDrawRoute(k, host, draws),
			})
		}
	}
	return zw, nil
}

// confinedOnLeasedDrawRoute is confinedOnLeasedLocalRoute for a
// per-iteration drawn name: Confined exactly when the client holds a
// positive lease on the draw's prefix, still valid at the operation's
// effective start (the driver has already advanced the clock to the
// arrival instant when this runs), routing to a co-shard server.
func confinedOnLeasedDrawRoute(k *kernel.Kernel, clientHost *kernel.Host, draws []string) func(*client.Session, int) engine.Class {
	return func(s *client.Session, iter int) engine.Class {
		pair, ok := s.LeasedRoute(draws[iter], s.Proc().Now())
		if !ok {
			return engine.Shared
		}
		h := k.HostOf(pair.Server)
		if h == nil || h.Shard() < 0 || h.Shard() != clientHost.Shard() {
			return engine.Shared
		}
		return engine.Confined
	}
}
