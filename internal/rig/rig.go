// Package rig assembles the paper's testbed in simulation (§6): diskless
// workstations and server machines on a shared Ethernet, file servers
// providing program loading and file access, one context prefix server
// per user workstation, and the simple local servers each workstation
// runs (virtual terminal server, program manager). A services machine
// hosts the printer, Internet and mail servers, and — for the baseline
// comparisons only — a centralized name server.
//
// The rig gives tests, examples and the experiment harness a common,
// deterministic topology.
package rig

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/execserver"
	"repro/internal/fileserver"
	"repro/internal/flight"
	"repro/internal/inetserver"
	"repro/internal/kernel"
	"repro/internal/mailserver"
	"repro/internal/metrics"
	"repro/internal/nameserver"
	"repro/internal/netsim"
	"repro/internal/pipeserver"
	"repro/internal/prefix"
	"repro/internal/printserver"
	"repro/internal/termserver"
	"repro/internal/timeserver"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// Config selects the rig's shape.
type Config struct {
	// Users names the workstation users; one workstation is built per
	// user. Default: {"mann", "cheriton"}.
	Users []string
	// Seed drives the network's deterministic RNG.
	Seed int64
	// ReadAhead controls the file servers' buffer-cache read-ahead.
	ReadAhead bool
	// Baseline additionally starts the centralized name server used by
	// the §2.2 comparison experiments.
	Baseline bool
	// Model overrides the cost model (default: the calibrated 3 Mbit
	// model; vtime.Model10Mbit() selects the faster wire).
	Model *vtime.CostModel
	// Retry, when non-nil, enables the client recovery policy
	// (resilience.go) on every session the rig creates.
	Retry *client.RetryPolicy
	// Trace installs a domain tracer recording every IPC primitive and
	// network frame as spans (internal/trace). Tracing charges zero
	// virtual time, so traced runs measure identically to untraced
	// ones.
	Trace bool
	// TraceSample, when non-nil, installs the tracer in sampled mode
	// (PROTOCOL.md §15): head sampling per client lane plus tail
	// retention of anomalous subtrees, O(k) retained spans at any
	// population. Implies Trace.
	TraceSample *trace.SampleConfig

	// Replicas consensus-replicates the fs1 file service and every
	// workstation's prefix table across a replication group of this many
	// members (PROTOCOL.md §11): member hosts fs1, fs1b, fs1c, … carry
	// identical volumes, clients talk to the replica fronts, and the
	// chaos hooks drive failover. 0 or 1 keeps the single-server
	// topology untouched.
	Replicas int

	// FileServerTeam sets how many serving processes each file server
	// runs (§3.1 server teams). 0 or 1 keeps the single-process server.
	FileServerTeam int
	// ServicesTeam does the same for the services-machine servers
	// (printer, Internet, mail, time, pipe).
	ServicesTeam int
	// PrefixTeam does the same for each workstation's prefix server.
	PrefixTeam int

	// Lease, when positive, enables lease granting of this length on
	// every workstation's prefix server (PROTOCOL.md §13). Sessions opt
	// into the lease cache individually with EnableLeaseCache.
	Lease time.Duration
	// AutoTuneLeaseMax, when positive (requires Lease, the floor),
	// replaces the fixed lease length with the per-name auto-tuner
	// (PROTOCOL.md §15): grants grow from Lease toward this cap while a
	// name's observed redefinition rate stays low, and reset to the
	// floor on redefinition.
	AutoTuneLeaseMax time.Duration
}

// teamOpt returns the core option list for a team-size knob: empty for
// 0/1 so the default single-process path is untouched.
func teamOpt(n int) []core.Option {
	if n <= 1 {
		return nil
	}
	return []core.Option{core.WithTeam(n)}
}

// DefaultConfig is the standard two-user configuration.
func DefaultConfig() Config {
	return Config{Users: []string{"mann", "cheriton"}, Seed: 1, ReadAhead: true}
}

// Workstation is one user's diskless workstation: the local servers plus
// a client session whose current context starts at the user's home
// directory.
type Workstation struct {
	Host    *kernel.Host
	User    string
	Prefix  *prefix.Server
	Term    *termserver.Server
	Exec    *execserver.Server
	Session *client.Session
	HomeCtx core.ContextPair

	// PrefixRep is the user's replicated prefix group when
	// Config.Replicas > 1, else nil. Prefix then aliases the
	// workstation-local member.
	PrefixRep *ReplicatedPrefix
}

// Rig is the assembled topology.
type Rig struct {
	Net    *netsim.Network
	Kernel *kernel.Kernel
	Model  *vtime.CostModel

	FS1Host *kernel.Host
	FS1     *fileserver.FileServer
	FS2Host *kernel.Host
	FS2     *fileserver.FileServer

	// FSR is the consensus-replicated fs1 service when Config.Replicas
	// > 1, else nil. FS1Host/FS1 then alias slot 0's host and
	// member-local server.
	FSR *ReplicatedFS

	ServicesHost *kernel.Host
	Print        *printserver.Server
	Inet         *inetserver.Server
	Mail         *mailserver.Server
	Time         *timeserver.Server
	Pipe         *pipeserver.Server

	NSHost *kernel.Host
	NS     *nameserver.Server

	WS []*Workstation

	// BinCtx is the standard program directory context on FS1.
	BinCtx core.ContextPair

	// Tracer is the domain tracer when Config.Trace was set, else nil.
	Tracer *trace.Tracer

	// Metrics is the rig's metrics registry. It is always installed:
	// instruments charge zero virtual time (metrics package doc), so a
	// metered run measures identically to the seed.
	Metrics *metrics.Registry
	// Sampler snapshots the registry on a fixed virtual-time tick.
	// Workloads that want time-series pump it like the chaos engine:
	// r.Sampler.AdvanceTo(session.Proc().Now()).
	Sampler *metrics.Sampler

	// Flight is the rig's always-on flight recorder (PROTOCOL.md §15):
	// a bounded ring journal of naming events, zero virtual cost and
	// zero hot-path allocations, sealed deterministically at engine
	// fences and dumped on chaos-test failure.
	Flight *flight.Recorder

	retry *client.RetryPolicy

	sessMu   sync.Mutex
	sessions []*client.Session
}

// New boots a rig.
func New(cfg Config) (*Rig, error) {
	if len(cfg.Users) == 0 {
		cfg.Users = []string{"mann", "cheriton"}
	}
	model := cfg.Model
	if model == nil {
		model = vtime.DefaultModel()
	}
	net := netsim.New(model, cfg.Seed)
	k := kernel.New(net)
	r := &Rig{Net: net, Kernel: k, Model: model, retry: cfg.Retry}
	r.Metrics = metrics.New()
	k.SetMetrics(r.Metrics)
	net.SetMetrics(r.Metrics)
	r.Sampler = metrics.NewSampler(r.Metrics, 0)
	r.Sampler.SetPoolSource(func() (gets, news uint64) {
		g, n, _ := kernel.EnvPoolStats()
		return g, n
	})
	r.Flight = flight.New(1 << 14)
	k.SetFlight(r.Flight)
	if cfg.TraceSample != nil {
		r.Tracer = trace.NewSampled(*cfg.TraceSample)
		k.SetTracer(r.Tracer)
		net.SetRecorder(r.Tracer)
	} else if cfg.Trace {
		r.Tracer = trace.New()
		k.SetTracer(r.Tracer)
		net.SetRecorder(r.Tracer)
	}

	if err := r.bootFileServers(cfg); err != nil {
		return nil, fmt.Errorf("rig: boot file servers: %w", err)
	}
	if err := r.bootServices(cfg); err != nil {
		return nil, fmt.Errorf("rig: boot services: %w", err)
	}
	for _, user := range cfg.Users {
		ws, err := r.bootWorkstation(cfg, user)
		if err != nil {
			return nil, fmt.Errorf("rig: boot workstation for %s: %w", user, err)
		}
		r.WS = append(r.WS, ws)
	}
	return r, nil
}

// MustNew is New for tests and examples where a boot failure is fatal.
func MustNew(cfg Config) *Rig {
	r, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return r
}

func (r *Rig) bootFileServers(cfg Config) error {
	if cfg.Replicas > 1 {
		return r.bootReplicatedFileServers(cfg)
	}
	var err error
	r.FS1Host = r.Kernel.NewHost("fs1")
	fsOpts := []fileserver.Option{fileserver.WithReadAhead(cfg.ReadAhead)}
	if cfg.FileServerTeam > 1 {
		fsOpts = append(fsOpts, fileserver.WithTeam(cfg.FileServerTeam))
	}
	r.FS1, err = fileserver.Start(r.FS1Host, "fs1", fsOpts...)
	if err != nil {
		return err
	}
	if err := r.FS1.Proc().SetPid(kernel.ServiceStorage, r.FS1.PID(), kernel.ScopeBoth); err != nil {
		return err
	}

	r.FS2Host = r.Kernel.NewHost("fs2")
	r.FS2, err = fileserver.Start(r.FS2Host, "fs2", fsOpts...)
	if err != nil {
		return err
	}
	if err := r.FS2.Proc().SetPid(kernel.ServiceStorage, r.FS2.PID(), kernel.ScopeBoth); err != nil {
		return err
	}

	// Standard file system contents.
	binCtx, err := r.FS1.MkdirAll("/bin", "system")
	if err != nil {
		return err
	}
	r.BinCtx = core.ContextPair{Server: r.FS1.PID(), Ctx: binCtx}
	if err := r.FS1.SetWellKnown(core.CtxStdPrograms, "/bin"); err != nil {
		return err
	}
	if err := r.FS1.SetWellKnown(core.CtxPublic, "/"); err != nil {
		return err
	}
	for name, size := range map[string]int{"hello": 2 * 1024, "editor": 64 * 1024, "compiler": 64 * 1024} {
		if err := r.FS1.WriteFile("/bin/"+name, "system", programImage(name, size)); err != nil {
			return err
		}
	}
	for _, user := range cfg.Users {
		base := "/users/" + user
		if err := r.FS1.WriteFile(base+"/welcome.txt", user,
			[]byte(fmt.Sprintf("Welcome to the V-System, %s.\n", user))); err != nil {
			return err
		}
		if err := r.FS1.WriteFile(base+"/notes/todo.txt", user,
			[]byte("- finish the naming paper\n- measure Open latency\n")); err != nil {
			return err
		}
	}
	if err := r.FS1.SetWellKnown(core.CtxHome, "/users/"+cfg.Users[0]); err != nil {
		return err
	}

	// FS2 holds the archive tree, reachable from FS1 through a
	// cross-server link (Figure 4's curved arrow).
	if err := r.FS2.WriteFile("/archive/2026/paper.mss", "system",
		[]byte("Uniform Access to Distributed Name Interpretation\n")); err != nil {
		return err
	}
	archiveCtx, err := r.FS2.MkdirAll("/archive", "system")
	if err != nil {
		return err
	}
	return r.FS1.AddLink("/shared", "archive",
		core.ContextPair{Server: r.FS2.PID(), Ctx: archiveCtx})
}

func (r *Rig) bootServices(cfg Config) error {
	var err error
	r.ServicesHost = r.Kernel.NewHost("services")
	team := teamOpt(cfg.ServicesTeam)
	if r.Print, err = printserver.Start(r.ServicesHost, team...); err != nil {
		return err
	}
	inetOpts := []inetserver.Option{}
	if cfg.ServicesTeam > 1 {
		inetOpts = append(inetOpts, inetserver.WithTeam(cfg.ServicesTeam))
	}
	if r.Inet, err = inetserver.Start(r.ServicesHost, inetOpts...); err != nil {
		return err
	}
	if r.Mail, err = mailserver.Start(r.ServicesHost, team...); err != nil {
		return err
	}
	if r.Time, err = timeserver.Start(r.ServicesHost, team...); err != nil {
		return err
	}
	if r.Pipe, err = pipeserver.Start(r.ServicesHost, team...); err != nil {
		return err
	}
	for _, user := range cfg.Users {
		if err := r.Mail.AddMailbox(user + "@v.stanford.edu"); err != nil {
			return err
		}
	}
	// A pre-existing foreign mailbox, with its externally-imposed name.
	if err := r.Mail.AddMailbox("cheriton@su-score.ARPA"); err != nil {
		return err
	}

	if cfg.Baseline {
		r.NSHost = r.Kernel.NewHost("nameserver")
		if r.NS, err = nameserver.Start(r.NSHost); err != nil {
			return err
		}
	}
	return nil
}

func (r *Rig) bootWorkstation(cfg Config, user string) (*Workstation, error) {
	host := r.Kernel.NewHost("ws-" + user)
	ws := &Workstation{Host: host, User: user}

	var err error
	if cfg.Replicas > 1 {
		if err = r.bootReplicatedPrefix(cfg, ws); err != nil {
			return nil, err
		}
	} else {
		prefixOpts := []prefix.Option{}
		if cfg.PrefixTeam > 1 {
			prefixOpts = append(prefixOpts, prefix.WithTeam(cfg.PrefixTeam))
		}
		if cfg.Lease > 0 && cfg.AutoTuneLeaseMax > 0 {
			prefixOpts = append(prefixOpts, prefix.WithLeaseAutoTune(cfg.Lease, cfg.AutoTuneLeaseMax))
		} else if cfg.Lease > 0 {
			prefixOpts = append(prefixOpts, prefix.WithLease(cfg.Lease))
		}
		if ws.Prefix, err = prefix.Start(host, user, prefixOpts...); err != nil {
			return nil, err
		}
	}
	if ws.Term, err = termserver.Start(host); err != nil {
		return nil, err
	}
	if ws.Exec, err = execserver.Start(host, r.BinCtx); err != nil {
		return nil, err
	}

	homeCtx, err := r.fs1MkdirAll("/users/"+user, user)
	if err != nil {
		return nil, err
	}
	ws.HomeCtx = core.ContextPair{Server: r.fs1PID(), Ctx: homeCtx}

	// The standard per-user context prefixes (§6): some refer to file
	// servers, some to special contexts within them, some to generic
	// services via dynamic (service, well-known-context) bindings.
	defs := []struct {
		name string
		bind func(ps *prefix.Server) error
	}{
		{"storage", func(ps *prefix.Server) error { return ps.Define("storage", r.fs1RootPair()) }},
		{"storage2", func(ps *prefix.Server) error { return ps.Define("storage2", r.FS2.RootPair()) }},
		{"home", func(ps *prefix.Server) error { return ps.Define("home", ws.HomeCtx) }},
		{"bin", func(ps *prefix.Server) error {
			return ps.DefineDynamic("bin", kernel.ServiceStorage, core.CtxStdPrograms)
		}},
		{"tty", func(ps *prefix.Server) error { return ps.Define("tty", ws.Term.RootPair()) }},
		{"exec", func(ps *prefix.Server) error { return ps.Define("exec", ws.Exec.RootPair()) }},
		{"print", func(ps *prefix.Server) error {
			return ps.DefineDynamic("print", kernel.ServicePrinter, core.CtxDefault)
		}},
		{"tcp", func(ps *prefix.Server) error {
			return ps.DefineDynamic("tcp", kernel.ServiceInternet, core.CtxDefault)
		}},
		{"mail", func(ps *prefix.Server) error {
			return ps.DefineDynamic("mail", kernel.ServiceMail, core.CtxDefault)
		}},
		{"time", func(ps *prefix.Server) error {
			return ps.DefineDynamic("time", kernel.ServiceTime, core.CtxDefault)
		}},
		{"pipe", func(ps *prefix.Server) error {
			return ps.DefineDynamic("pipe", kernel.ServicePipe, core.CtxDefault)
		}},
	}
	// Prefix tables are boot-seeded identically on every replica member
	// (a single server is its own one-member list).
	for _, ps := range ws.prefixServers() {
		for _, d := range defs {
			if err := d.bind(ps); err != nil {
				return nil, fmt.Errorf("prefix %q: %w", d.name, err)
			}
		}
	}

	ws.Session, err = r.NewSession(ws)
	return ws, err
}

// NewSession creates an additional client session (a "program") on a
// workstation, inheriting the user's prefix server and home directory as
// current context (§6).
func (r *Rig) NewSession(ws *Workstation) (*client.Session, error) {
	proc, err := ws.Host.NewProcess("client-" + ws.User)
	if err != nil {
		return nil, err
	}
	s := client.New(proc, ws.Prefix.PID(), ws.HomeCtx, ws.User)
	// The home context is nameable as [home]; recording that lets the
	// recovery policy re-map the current context if its server dies.
	s.SetCurrentName("[home]")
	if r.retry != nil {
		s.EnableResilience(*r.retry)
	}
	r.sessMu.Lock()
	r.sessions = append(r.sessions, s)
	r.sessMu.Unlock()
	return s, nil
}

// Workstation returns the i-th workstation.
func (r *Rig) Workstation(i int) *Workstation { return r.WS[i] }

// programImage fabricates a deterministic program image of the given
// size.
func programImage(name string, size int) []byte {
	img := make([]byte, size)
	copy(img, "V-PROGRAM:"+name)
	for i := len(name) + 10; i < size; i++ {
		img[i] = byte(i * 31)
	}
	return img
}
