package rig

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/chaos"
)

// sharedPrefixShape is the topology the engine tests drive: enough
// clients per shard to contend on each shard server's clock, a central
// prefix server every cache miss must cross the wire to reach, and a
// periodic cache flush so Shared re-resolutions recur throughout the
// run instead of clustering at iteration 0.
var sharedPrefixShape = SharedPrefixConfig{
	Shards: 4, ClientsPerShard: 4, Requests: 40, Seed: 7, FlushEvery: 6,
}

func buildSharedPrefix(t *testing.T, team int) *SharedPrefixWorkload {
	t.Helper()
	cfg := sharedPrefixShape
	cfg.Team = team
	sw, err := NewSharedPrefixWorkload(cfg)
	if err != nil {
		t.Fatalf("build shared-prefix workload: %v", err)
	}
	return sw
}

// cacheTotals sums hits and misses across the workload's sessions —
// the test's proof that both operation classes actually ran.
func cacheTotals(sw *SharedPrefixWorkload) (hits, misses int) {
	for _, c := range sw.Clients {
		st := c.Session.NameCacheStats()
		hits += st.Hits
		misses += st.Misses
	}
	return hits, misses
}

// TestShardedEquivalence asserts the tentpole guarantee on the topology
// the pre-engine driver could not parallelize: the conservative engine's
// WorkloadResult is deeply equal to the sequential driver's on the
// shared-prefix topology, across team sizes, with both operation classes
// exercised. make check runs it under -race at GOMAXPROCS=1 and at the
// machine's CPU count.
func TestShardedEquivalence(t *testing.T) {
	for _, team := range []int{1, 2, 4} {
		seqTop := buildSharedPrefix(t, team)
		seq := RunWorkload(seqTop.Clients)
		want := sharedPrefixShape.Shards * sharedPrefixShape.ClientsPerShard * sharedPrefixShape.Requests
		if seq.Requests != want {
			t.Fatalf("team %d: sequential driver issued %d requests, want %d", team, seq.Requests, want)
		}
		for i, c := range seq.Clients {
			if c.Errors != 0 {
				t.Fatalf("team %d: sequential client %d saw %d errors", team, i, c.Errors)
			}
		}
		parTop := buildSharedPrefix(t, team)
		par := RunWorkloadParallel(parTop.Clients, 0)
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("team %d: sharded result differs from sequential\nseq: %+v\npar: %+v", team, seq, par)
		}
		if seq.Throughput() != par.Throughput() {
			t.Fatalf("team %d: throughput differs: %v vs %v", team, seq.Throughput(), par.Throughput())
		}
		hits, misses := cacheTotals(parTop)
		if hits == 0 || misses == 0 {
			t.Fatalf("team %d: degenerate class mix (hits=%d misses=%d); the test needs both", team, hits, misses)
		}
	}
}

// nexusChaosSchedule is the A14 crash/restart schedule (two outages,
// 500 ms each, at the same virtual times) aimed at the topology's
// shared prefix host: the server every lane's cache misses depend on,
// the role fs1 plays in A14.
func nexusChaosSchedule() []chaos.Event {
	return []chaos.Event{
		{At: 300 * time.Millisecond, Action: chaos.Crash, Host: "nexus", Note: "first outage"},
		{At: 800 * time.Millisecond, Action: chaos.Restart, Host: "nexus"},
		{At: 1600 * time.Millisecond, Action: chaos.Crash, Host: "nexus", Note: "second outage"},
		{At: 2100 * time.Millisecond, Action: chaos.Restart, Host: "nexus"},
	}
}

// chaosRun drives the shared-prefix workload through the conservative
// engine with the A14 schedule wired in as fences.
func chaosRun(t *testing.T, requests int) (*SharedPrefixWorkload, *chaos.Engine, *WorkloadResult) {
	t.Helper()
	cfg := sharedPrefixShape
	cfg.Requests = requests
	sw, err := NewSharedPrefixWorkload(cfg)
	if err != nil {
		t.Fatalf("build shared-prefix workload: %v", err)
	}
	eng := chaos.New(sw.Kernel, nexusChaosSchedule())
	res := RunWorkloadEngine(sw.Clients, EngineOptions{Fences: ChaosFences(eng)})
	return sw, eng, res
}

// TestShardedUnderChaos runs the A14 crash schedule on the sharded
// engine: the central prefix host crashes and restarts mid-run while the
// lanes execute concurrently. Events fire at global fences (quiescent
// cuts), so two runs must agree byte-for-byte — same per-client stats,
// same fired-event log — and the outages must be client-visible (cache
// flushes during an outage hit a dead or empty prefix host).
func TestShardedUnderChaos(t *testing.T) {
	const requests = 40
	_, eng1, res1 := chaosRun(t, requests)
	_, eng2, res2 := chaosRun(t, requests)
	if !reflect.DeepEqual(res1, res2) {
		t.Fatalf("sharded chaos run not deterministic\nrun1: %+v\nrun2: %+v", res1, res2)
	}
	if !reflect.DeepEqual(eng1.Log(), eng2.Log()) {
		t.Fatalf("chaos logs differ:\n%v\nvs\n%v", eng1.Log(), eng2.Log())
	}
	if eng1.Fired() == 0 {
		t.Fatal("no chaos events fired; schedule missed the workload horizon")
	}
	errs := 0
	for _, c := range res1.Clients {
		errs += c.Errors
	}
	if errs == 0 {
		t.Fatal("prefix-host outages were never client-visible (no errors recorded)")
	}
}

// TestShardedPartitionMidFlight is the satellite regression test: a
// network partition fires mid-flight on a sharded run — the prefix host
// is cut off while concurrent lanes stream cache hits and periodically
// miss across the wire — and the copy-on-write partition map plus fence
// ordering must keep the run race-free (this test runs under -race in
// make check) and byte-deterministic.
func TestShardedPartitionMidFlight(t *testing.T) {
	schedule := []chaos.Event{
		{At: 150 * time.Millisecond, Action: chaos.Partition, Host: "nexus", Group: 1, Note: "prefix host cut off"},
		{At: 350 * time.Millisecond, Action: chaos.Heal},
	}
	run := func() (*chaos.Engine, *WorkloadResult) {
		sw, err := NewSharedPrefixWorkload(sharedPrefixShape)
		if err != nil {
			t.Fatalf("build shared-prefix workload: %v", err)
		}
		eng := chaos.New(sw.Kernel, schedule)
		res := RunWorkloadEngine(sw.Clients, EngineOptions{Fences: ChaosFences(eng)})
		return eng, res
	}
	eng1, res1 := run()
	eng2, res2 := run()
	if !reflect.DeepEqual(res1, res2) {
		t.Fatalf("partition run not deterministic\nrun1: %+v\nrun2: %+v", res1, res2)
	}
	if !reflect.DeepEqual(eng1.Log(), eng2.Log()) {
		t.Fatalf("chaos logs differ:\n%v\nvs\n%v", eng1.Log(), eng2.Log())
	}
	if eng1.Fired() != 2 {
		t.Fatalf("fired %d events, want 2 (partition + heal)", eng1.Fired())
	}
	errs, completed := 0, 0
	for _, c := range res1.Clients {
		errs += c.Errors
		completed += c.Completed
	}
	if errs == 0 {
		t.Fatal("partition was never client-visible (no errors recorded)")
	}
	if completed == 0 {
		t.Fatal("no operations completed despite lane-confined cache hits")
	}
}
