// Sharded workload topology for the wall-clock performance benchmarks.
//
// The parallel driver's equivalence guarantee (see workload.go) requires
// lanes that share no execution-order-sensitive substrate state. This
// file builds exactly that shape: independent file-server shards, each on
// its own host with its clients co-resident, so every request is a local
// hop — it never touches the shared-wire ledger or the loss RNG — and no
// server process is shared between lanes.
package rig

import (
	"fmt"

	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/fileserver"
	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/vtime"
)

// ShardHotPath is the deep name the sharded workload queries: seven
// components of context lookup plus the final object, the same shape the
// A11 team experiment uses for its hot phase.
const ShardHotPath = "deep/a/b/c/d/e/f/hot.dat"

// ShardedWorkload is a self-contained multi-shard benchmark topology.
type ShardedWorkload struct {
	Kernel  *kernel.Kernel
	Net     *netsim.Network
	Hosts   []*kernel.Host
	Shards  []*fileserver.FileServer
	Clients []*WorkloadClient
}

// ShardConfig shapes a sharded workload.
type ShardConfig struct {
	// Shards is the number of independent file-server shards (= lanes).
	Shards int
	// ClientsPerShard is the number of co-resident clients per shard.
	ClientsPerShard int
	// Requests is each client's quota of Query iterations.
	Requests int
	// Team is each shard file server's team size (0/1 = single process).
	Team int
	// Seed drives the network's deterministic RNG.
	Seed int64
}

// NewShardedWorkload boots the sharded topology: Shards hosts, each
// running one file server seeded with the deep hot path, plus
// ClientsPerShard client processes on the same host whose Op queries
// ShardHotPath. Clients carry Lane = shard index, so RunWorkloadParallel
// runs one goroutine-lane per shard and RunWorkload reproduces the same
// result sequentially.
func NewShardedWorkload(cfg ShardConfig) (*ShardedWorkload, error) {
	if cfg.Shards <= 0 || cfg.ClientsPerShard <= 0 || cfg.Requests <= 0 {
		return nil, fmt.Errorf("sharded workload: shards, clients and requests must be positive")
	}
	net := netsim.New(vtime.DefaultModel(), cfg.Seed)
	k := kernel.New(net)
	sw := &ShardedWorkload{Kernel: k, Net: net}

	payload := make([]byte, 512)
	for i := range payload {
		payload[i] = byte(i)
	}
	for s := 0; s < cfg.Shards; s++ {
		host := k.NewHost(fmt.Sprintf("shard%d", s))
		host.SetShard(s)
		opts := []fileserver.Option{}
		if cfg.Team > 1 {
			opts = append(opts, fileserver.WithTeam(cfg.Team))
		}
		fs, err := fileserver.Start(host, fmt.Sprintf("fs%d", s), opts...)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
		if _, err := fs.MkdirAll("/deep/a/b/c/d/e/f", "bench"); err != nil {
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
		if err := fs.WriteFile("/deep/a/b/c/d/e/f/hot.dat", "bench", payload); err != nil {
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
		sw.Hosts = append(sw.Hosts, host)
		sw.Shards = append(sw.Shards, fs)
		for c := 0; c < cfg.ClientsPerShard; c++ {
			proc, err := host.NewProcess(fmt.Sprintf("bench%d-%d", s, c))
			if err != nil {
				return nil, fmt.Errorf("shard %d client %d: %w", s, c, err)
			}
			sess := client.New(proc, kernel.NilPID, fs.RootPair(), "bench")
			sw.Clients = append(sw.Clients, &WorkloadClient{
				Session:  sess,
				Requests: cfg.Requests,
				Lane:     s,
				Op: func(s *client.Session, iter int) error {
					_, err := s.Query(ShardHotPath)
					return err
				},
				// Every request is a co-resident query of the lane's own
				// file server: a local hop that never touches the wire
				// ledger, the loss RNG, or another lane's servers.
				Classify: func(*client.Session, int) engine.Class { return engine.Confined },
			})
		}
	}
	return sw, nil
}
