// Resilience glue: the rig-level view of the recovery machinery — chaos
// engines composed over the topology, crashed-server re-creation, and
// aggregated resilience metrics across sessions and prefix servers.
package rig

import (
	"repro/internal/chaos"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/fileserver"
	"repro/internal/kernel"
	"repro/internal/prefix"
)

// NewChaos builds a chaos engine over this rig's kernel. Its restart
// hook re-creates the fs1 file server whenever a scripted Restart brings
// the fs1 host back — the engine can restart a host kernel, but only the
// rig knows what ran on it. Schedules targeting other hosts restart bare
// kernels unless the caller replaces the hook.
func (r *Rig) NewChaos(events []chaos.Event) *chaos.Engine {
	e := chaos.New(r.Kernel, events)
	e.RestartHook = func(host string) error {
		if host == "fs1" {
			// The dying team notices the crash asynchronously (its
			// goroutines, real time); wait for its exit to be recorded
			// before the replacement starts so trace snapshots are
			// deterministic — one server-exit event per scripted crash,
			// always present.
			if r.FS1 != nil {
				<-r.FS1.Exited()
			}
			_, err := r.RecreateFS1()
			return err
		}
		return nil
	}
	return e
}

// DrainFS1 waits for a crashed fs1 server team to finish dying. A no-op
// while the fs1 host is up; after a schedule that ends with fs1 down it
// blocks until the team's exit (and its trace event) is recorded, so a
// snapshot taken afterwards is complete and deterministic.
func (r *Rig) DrainFS1() {
	if r.FS1 != nil && !r.FS1Host.Alive() {
		<-r.FS1.Exited()
	}
}

// RecreateFS1 starts a replacement fs1 file server on the (restarted)
// fs1 host and re-registers its service and well-known contexts. The
// replacement is a cold server: it gets a new pid (the §4.2 rebinding
// scenario) and an empty file system seeded with /bin/hello, so dynamic
// bindings and program loads recover while static bindings to the old
// pid dangle.
func (r *Rig) RecreateFS1() (*fileserver.FileServer, error) {
	fs, err := fileserver.Start(r.FS1Host, "fs1")
	if err != nil {
		return nil, err
	}
	if err := fs.Proc().SetPid(kernel.ServiceStorage, fs.PID(), kernel.ScopeBoth); err != nil {
		return nil, err
	}
	if err := fs.SetWellKnown(core.CtxStdPrograms, "/bin"); err != nil {
		return nil, err
	}
	if err := fs.WriteFile("/bin/hello", "system", programImage("hello", 2048)); err != nil {
		return nil, err
	}
	r.FS1 = fs
	return fs, nil
}

// ResilienceSummary aggregates the recovery record of a run: every
// session's client-side retry counters plus every workstation prefix
// server's forwarding and rebinding counters.
type ResilienceSummary struct {
	Client client.ResilienceStats
	Prefix prefix.Stats
}

// ResilienceSummary sums resilience metrics across all sessions the rig
// created and all workstation prefix servers.
func (r *Rig) ResilienceSummary() ResilienceSummary {
	var sum ResilienceSummary
	r.sessMu.Lock()
	sessions := append([]*client.Session(nil), r.sessions...)
	r.sessMu.Unlock()
	for _, s := range sessions {
		st := s.ResilienceStats()
		sum.Client.Ops += st.Ops
		sum.Client.OpsFailed += st.OpsFailed
		sum.Client.Retries += st.Retries
		sum.Client.Rebinds += st.Rebinds
		sum.Client.Failovers += st.Failovers
		sum.Client.Downtime += st.Downtime
	}
	for _, ws := range r.WS {
		ps := ws.Prefix.Stats()
		sum.Prefix.Forwards += ps.Forwards
		sum.Prefix.Rebinds += ps.Rebinds
		sum.Prefix.DeadTargets += ps.DeadTargets
	}
	return sum
}
