// Resilience glue: the rig-level view of the recovery machinery — chaos
// engines composed over the topology, crashed-server re-creation, and
// aggregated resilience metrics across sessions and prefix servers.
package rig

import (
	"fmt"
	"sort"

	"repro/internal/chaos"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/fileserver"
	"repro/internal/kernel"
	"repro/internal/prefix"
)

// NewChaos builds a chaos engine over this rig's kernel. Its restart
// hook re-creates the fs1 file server whenever a scripted Restart brings
// the fs1 host back — the engine can restart a host kernel, but only the
// rig knows what ran on it. Schedules targeting other hosts restart bare
// kernels unless the caller replaces the hook. On a replicated rig the
// hooks instead feed the replication groups: crashes become NoteDown,
// restarts re-create the member and rejoin it (replicated.go).
func (r *Rig) NewChaos(events []chaos.Event) *chaos.Engine {
	e := chaos.New(r.Kernel, events)
	if r.FSR != nil {
		r.wireReplicaHooks(e)
		return e
	}
	e.RestartHook = func(host string) error {
		if host == "fs1" {
			// The dying team notices the crash asynchronously (its
			// goroutines, real time); wait for its exit to be recorded
			// before the replacement starts so trace snapshots are
			// deterministic — one server-exit event per scripted crash,
			// always present.
			if r.FS1 != nil {
				<-r.FS1.Exited()
			}
			_, err := r.RecreateFS1()
			return err
		}
		return nil
	}
	return e
}

// DrainFS1 waits for a crashed fs1 server team to finish dying. A no-op
// while the fs1 host is up; after a schedule that ends with fs1 down it
// blocks until the team's exit (and its trace event) is recorded, so a
// snapshot taken afterwards is complete and deterministic.
func (r *Rig) DrainFS1() {
	if r.FS1 != nil && !r.FS1Host.Alive() {
		<-r.FS1.Exited()
	}
}

// ServerKind names what RecreateServer rebuilds on a restarted host.
type ServerKind string

const (
	// ServerFile is a file server: fs1/fs2, or a replicated fs1 member.
	ServerFile ServerKind = "fileserver"
	// ServerPrefix is a prefix server: a workstation's own, or a
	// replicated prefix-group member.
	ServerPrefix ServerKind = "prefix"
)

// RecreateServer starts a replacement server of the given kind on the
// (restarted) host and re-registers its services. Unreplicated
// replacements are cold servers: a new pid (the §4.2 rebinding
// scenario) and minimally re-seeded state — fs1 keeps only /bin/hello,
// fs2 only the archive paper, a workstation prefix server its old
// table. Replicated members come back empty and receive their state
// from the group's rejoin snapshot-sync instead.
func (r *Rig) RecreateServer(host string, kind ServerKind) error {
	switch kind {
	case ServerFile:
		if r.FSR != nil {
			if m := r.FSR.Member(host); m != nil {
				return r.recreateFSMember(m)
			}
		}
		switch host {
		case "fs1":
			fs, err := fileserver.Start(r.FS1Host, "fs1")
			if err != nil {
				return err
			}
			if err := fs.Proc().SetPid(kernel.ServiceStorage, fs.PID(), kernel.ScopeBoth); err != nil {
				return err
			}
			if err := fs.SetWellKnown(core.CtxStdPrograms, "/bin"); err != nil {
				return err
			}
			if err := fs.WriteFile("/bin/hello", "system", programImage("hello", 2048)); err != nil {
				return err
			}
			r.FS1 = fs
			return nil
		case "fs2":
			fs, err := fileserver.Start(r.FS2Host, "fs2")
			if err != nil {
				return err
			}
			if err := fs.Proc().SetPid(kernel.ServiceStorage, fs.PID(), kernel.ScopeBoth); err != nil {
				return err
			}
			if err := fs.WriteFile("/archive/2026/paper.mss", "system",
				[]byte("Uniform Access to Distributed Name Interpretation\n")); err != nil {
				return err
			}
			r.FS2 = fs
			return nil
		}
		return fmt.Errorf("rig: no file server to recreate on host %q", host)
	case ServerPrefix:
		for _, ws := range r.WS {
			if ws.PrefixRep != nil {
				if m := ws.PrefixRep.Member(host); m != nil {
					return r.recreatePrefixMember(ws, m)
				}
				continue
			}
			if ws.Host.Name() != host {
				continue
			}
			old := ws.Prefix.Bindings()
			srv, err := prefix.Start(ws.Host, ws.User)
			if err != nil {
				return err
			}
			names := make([]string, 0, len(old))
			for name := range old {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				b := old[name]
				if b.Dynamic {
					err = srv.DefineDynamic(name, b.Service, b.WellKnown)
				} else {
					err = srv.Define(name, b.Pair)
				}
				if err != nil {
					return err
				}
			}
			ws.Prefix = srv
			return nil
		}
		return fmt.Errorf("rig: no prefix server to recreate on host %q", host)
	}
	return fmt.Errorf("rig: unknown server kind %q", kind)
}

// RecreateFS1 starts a replacement fs1 file server on the (restarted)
// fs1 host — RecreateServer for the common case, returning the new
// server.
func (r *Rig) RecreateFS1() (*fileserver.FileServer, error) {
	if err := r.RecreateServer("fs1", ServerFile); err != nil {
		return nil, err
	}
	return r.FS1, nil
}

// ResilienceSummary aggregates the recovery record of a run: every
// session's client-side retry counters plus every workstation prefix
// server's forwarding and rebinding counters.
type ResilienceSummary struct {
	Client client.ResilienceStats
	Prefix prefix.Stats
}

// ResilienceSummary sums resilience metrics across all sessions the rig
// created and all workstation prefix servers.
func (r *Rig) ResilienceSummary() ResilienceSummary {
	var sum ResilienceSummary
	r.sessMu.Lock()
	sessions := append([]*client.Session(nil), r.sessions...)
	r.sessMu.Unlock()
	for _, s := range sessions {
		st := s.ResilienceStats()
		sum.Client.Ops += st.Ops
		sum.Client.OpsFailed += st.OpsFailed
		sum.Client.Retries += st.Retries
		sum.Client.Rebinds += st.Rebinds
		sum.Client.Failovers += st.Failovers
		sum.Client.Downtime += st.Downtime
	}
	for _, ws := range r.WS {
		ps := ws.Prefix.Stats()
		sum.Prefix.Forwards += ps.Forwards
		sum.Prefix.Rebinds += ps.Rebinds
		sum.Prefix.DeadTargets += ps.DeadTargets
	}
	return sum
}
