package rig

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/client"
	"repro/internal/trace"
)

// leaseShape is the engine-equivalence topology with the lease-coherent
// hierarchy in place of the periodic blind flush: the lease is short
// relative to the run horizon so renewals (Shared re-resolutions through
// the prefix server) recur mid-run, exercising both engine classes.
var leaseShape = SharedPrefixConfig{
	Shards: 4, ClientsPerShard: 4, Requests: 40, Seed: 7,
	Lease: 20 * time.Millisecond,
}

// leaseTotals sums the lease-cache counters across the workload's
// sessions — the proof that both operation classes actually ran.
func leaseTotals(sw *SharedPrefixWorkload) (hits, misses, renewals int) {
	for _, c := range sw.Clients {
		st := c.Session.LeaseCacheStats()
		hits += st.Hits
		misses += st.Misses
		renewals += st.Renewals
	}
	return hits, misses, renewals
}

// TestShardedLeaseEquivalence extends the tentpole equivalence guarantee
// to the lease-coherent hierarchy: with leases replacing FlushEvery (and
// optionally the intermediate cache tier interposed), the conservative
// engine's WorkloadResult must be deeply equal to the sequential
// driver's, across team sizes, with lease hits, cold misses and
// mid-run renewals all present. make check runs it under -race.
func TestShardedLeaseEquivalence(t *testing.T) {
	for _, tc := range []struct {
		label string
		team  int
		tier  bool
	}{
		{"team1", 1, false},
		{"team2", 2, false},
		{"team4", 4, false},
		{"tier", 1, true},
	} {
		t.Run(tc.label, func(t *testing.T) {
			build := func() *SharedPrefixWorkload {
				cfg := leaseShape
				cfg.Team = tc.team
				cfg.CacheTier = tc.tier
				sw, err := NewSharedPrefixWorkload(cfg)
				if err != nil {
					t.Fatalf("build leased workload: %v", err)
				}
				return sw
			}
			seqTop := build()
			seq := RunWorkload(seqTop.Clients)
			want := leaseShape.Shards * leaseShape.ClientsPerShard * leaseShape.Requests
			if seq.Requests != want {
				t.Fatalf("sequential driver issued %d requests, want %d", seq.Requests, want)
			}
			for i, c := range seq.Clients {
				if c.Errors != 0 {
					t.Fatalf("sequential client %d saw %d errors", i, c.Errors)
				}
			}
			parTop := build()
			par := RunWorkloadParallel(parTop.Clients, 0)
			if !reflect.DeepEqual(seq, par) {
				t.Fatalf("leased result differs from sequential\nseq: %+v\npar: %+v", seq, par)
			}
			if seq.Throughput() != par.Throughput() {
				t.Fatalf("throughput differs: %v vs %v", seq.Throughput(), par.Throughput())
			}
			hits, misses, renewals := leaseTotals(parTop)
			if hits == 0 || misses == 0 || renewals == 0 {
				t.Fatalf("degenerate class mix (hits=%d misses=%d renewals=%d); the test needs all three",
					hits, misses, renewals)
			}
			// And both drivers observed the same cache behaviour, not just
			// the same latencies.
			sh, sm, sr := leaseTotals(seqTop)
			if sh != hits || sm != misses || sr != renewals {
				t.Fatalf("cache counters diverge: seq %d/%d/%d vs engine %d/%d/%d",
					sh, sm, sr, hits, misses, renewals)
			}
		})
	}
}

// TestInvalidationUnderChaos is the headline staleness run: the A14
// crash schedule plus a mid-run redefinition of a live prefix, driven
// through the conservative engine with leases bounding staleness instead
// of periodic flushes. The redefinition fires as a Custom chaos event at
// a quiescent cut — an admin session on the prefix host deletes and
// re-adds [shard0], so the callback barrier must reach every lease
// holder before the mutation returns. The run must be byte-deterministic
// across repetitions, the outages client-visible, and — the invariant
// this PR exists for — the recorded trace must satisfy the lease
// staleness bound (trace.Check invariant #7): no read is served from a
// binding more than one lease length after it was redefined.
func TestInvalidationUnderChaos(t *testing.T) {
	const lease = 80 * time.Millisecond
	run := func() (*SharedPrefixWorkload, *chaos.Engine, *WorkloadResult) {
		cfg := sharedPrefixShape
		cfg.FlushEvery = 0
		cfg.Lease = lease
		cfg.Trace = true
		// Leases make the run far cheaper than the flush-driven shape —
		// stretch the quota so the horizon covers the whole schedule.
		cfg.Requests = 150
		sw, err := NewSharedPrefixWorkload(cfg)
		if err != nil {
			t.Fatalf("build leased workload: %v", err)
		}
		redefine := func() error {
			proc, err := sw.PrefixHost.NewProcess("admin")
			if err != nil {
				return err
			}
			adm := client.New(proc, sw.Prefix.PID(), sw.Shards[0].RootPair(), "admin")
			if err := adm.DeleteName("shard0"); err != nil {
				return err
			}
			return adm.AddName("shard0", sw.Shards[0].RootPair())
		}
		// The A14 outage pattern (two crash/restart cycles of the shared
		// prefix host), compressed to the lease-era horizon: without the
		// blind flushes the same request quota spans far less virtual
		// time, so the outages land earlier to stay inside the run.
		schedule := []chaos.Event{
			{At: 150 * time.Millisecond, Action: chaos.Custom, Note: "redefine shard0", Do: redefine},
			{At: 300 * time.Millisecond, Action: chaos.Crash, Host: "nexus", Note: "first outage"},
			{At: 500 * time.Millisecond, Action: chaos.Restart, Host: "nexus"},
			{At: 700 * time.Millisecond, Action: chaos.Crash, Host: "nexus", Note: "second outage"},
			{At: 850 * time.Millisecond, Action: chaos.Restart, Host: "nexus"},
		}
		eng := chaos.New(sw.Kernel, schedule)
		res := RunWorkloadEngine(sw.Clients, EngineOptions{Fences: ChaosFences(eng)})
		return sw, eng, res
	}

	sw1, eng1, res1 := run()
	_, eng2, res2 := run()
	if !reflect.DeepEqual(res1, res2) {
		t.Fatalf("leased chaos run not deterministic\nrun1: %+v\nrun2: %+v", res1, res2)
	}
	if !reflect.DeepEqual(eng1.Log(), eng2.Log()) {
		t.Fatalf("chaos logs differ:\n%v\nvs\n%v", eng1.Log(), eng2.Log())
	}
	if eng1.Fired() != 5 {
		t.Fatalf("fired %d events, want 5 (redefine + two crash/restart pairs)", eng1.Fired())
	}
	if log := strings.Join(eng1.Log(), "\n"); strings.Contains(log, "error") {
		t.Fatalf("redefine event failed:\n%s", log)
	}

	errs, completed := 0, 0
	for _, c := range res1.Clients {
		errs += c.Errors
		completed += c.Completed
	}
	if errs == 0 {
		t.Fatal("prefix-host outages were never client-visible (no errors recorded)")
	}
	if completed == 0 {
		t.Fatal("no operations completed despite lane-confined lease hits")
	}

	// The redefinition's callback barrier reached the shard0 holders: at
	// least one client observed its lease dropped out from under it.
	invalidated := 0
	for _, c := range sw1.Clients[:sharedPrefixShape.ClientsPerShard] {
		invalidated += c.Session.LeaseCacheStats().Invalidations
	}
	if invalidated == 0 {
		t.Fatal("redefinition invalidated no shard0 lease holder")
	}

	// The invariant itself, asserted rather than eyeballed: every lease
	// stamp spans at most the configured length, no hit outlives its
	// lease, and no hit backed by a pre-redefinition grant runs more than
	// one lease length past the redefinition's commit.
	if err := trace.Check(sw1.Tracer.Snapshot(), trace.CheckOptions{LeaseBound: lease}); err != nil {
		t.Fatalf("lease staleness invariant violated: %v", err)
	}
	// Any stale windows the trace does contain are bounded by the lease.
	for _, w := range trace.StaleWindows(sw1.Tracer.Snapshot()) {
		if time.Duration(w.Window) > lease {
			t.Fatalf("stale window %+v exceeds the lease bound %v", w, lease)
		}
	}
}
