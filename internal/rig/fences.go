// Fence wiring for the conservative engine (PROTOCOL.md §12): the
// chaos → groups → sampler pump order of §11.4, generalized from
// per-operation sequential pumping to global fences fired at the
// engine's quiescent cuts.
package rig

import (
	"repro/internal/chaos"
	"repro/internal/engine"
	"repro/internal/flight"
	"repro/internal/metrics"
	"repro/internal/vtime"
)

// EngineFences builds the standard fence schedule for RunWorkloadEngine
// on this rig: fence times are the merged chaos-event times and sampler
// tick boundaries, and each firing pumps the chaos engine first, then
// every replication group, then the sampler — the fixed observer order
// that keeps runs deterministic, now anchored at globally quiescent
// virtual times instead of at whichever lane's operation happened to
// pump past them. eng may be nil (sampler ticks only).
func (r *Rig) EngineFences(eng *chaos.Engine) engine.Fences {
	return SealFlightAtFences(MergeFences(eng, r.Sampler, r.PumpGroups), r.Flight)
}

// SealFlightAtFences wraps a fence source so every firing also seals the
// flight recorder's ring at the fence time (PROTOCOL.md §15): the cut is
// globally quiescent, so the batch of events between two seals is a
// deterministic set, and the seal sorts it canonically — the journal
// read after a fence is byte-stable across runs regardless of goroutine
// interleaving within the window. rec may be nil (fences unchanged).
func SealFlightAtFences(f engine.Fences, rec *flight.Recorder) engine.Fences {
	if rec == nil {
		return f
	}
	inner := f.Fire
	f.Fire = func(at vtime.Time) {
		if inner != nil {
			inner(at)
		}
		rec.Seal(at)
	}
	return f
}

// ChaosFences builds a fence schedule from a chaos engine alone, for
// standalone topologies (NewShardedWorkload, NewSharedPrefixWorkload)
// that carry no sampler or replication groups.
func ChaosFences(eng *chaos.Engine) engine.Fences {
	return MergeFences(eng, nil, nil)
}

// MergeFences merges a chaos schedule and a sampler into one fence
// source, firing chaos events, then the groups hook (when non-nil), then
// the sampler, at every fence time. Any argument may be nil.
func MergeFences(eng *chaos.Engine, sampler *metrics.Sampler, groups func(vtime.Time)) engine.Fences {
	next := func(after vtime.Time) (vtime.Time, bool) {
		var at vtime.Time
		ok := false
		if eng != nil {
			if t, pending := eng.NextEventAt(); pending && t > after {
				at, ok = t, true
			}
		}
		if sampler != nil {
			if t := sampler.NextAt(); t > after && (!ok || t < at) {
				at, ok = t, true
			}
		}
		return at, ok
	}
	fire := func(at vtime.Time) {
		if eng != nil {
			eng.AdvanceTo(at)
		}
		if groups != nil {
			groups(at)
		}
		if sampler != nil {
			sampler.AdvanceTo(at)
		}
	}
	return engine.Fences{Next: next, Fire: fire}
}
