// Package ncache implements the shared intermediate name-cache tier
// (PROTOCOL.md §13): a caching front for a lease-granting context prefix
// server, normally co-resident with the prefix host, that many client
// hosts share. Lease-flagged bare-prefix MapContext requests are served
// from the tier's own lease table — one upstream lease amortized across
// every client behind the tier — and every other request is forwarded to
// the prefix server unchanged, so the tier is transparent to the plain
// protocol: clients simply address the tier as their prefix server.
//
// Coherence is hierarchical. The tier holds upstream leases through a
// dedicated callback process and re-grants sub-leases to its clients,
// each expiring no later than the backing upstream lease, so a client's
// staleness bound never exceeds the granting server's. An invalidation
// from the prefix server drops the tier entry and propagates to the
// tier's own holder groups with the same all-reply barrier semantics
// (kernel.SendGroupAll) before the tier acknowledges — the prefix
// server's define/delete therefore still returns only after every
// reachable cache in the hierarchy, shared or per-client, has dropped
// the name. The callback process is deliberately distinct from the
// serving process: the serving process may be blocked inside an
// upstream Send while the prefix server waits on the tier's callback,
// and a single-process tier would deadlock that barrier.
package ncache

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/flight"
	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/namestat"
	"repro/internal/nametree"
	"repro/internal/prefix"
	"repro/internal/proto"
	"repro/internal/trace"
)

// Stats counts the tier's serving activity.
type Stats struct {
	// Hits served a lease request from a valid tier entry.
	Hits uint64
	// Misses walked the upstream prefix server for a fresh lease.
	Misses uint64
	// NegativeHits answered a known-absent name from a negative entry.
	NegativeHits uint64
	// Renewals are misses that replaced a lapsed entry.
	Renewals uint64
	// Invalidations counts upstream callbacks applied.
	Invalidations uint64
	// Propagated counts downstream holders that acknowledged a
	// propagated invalidation.
	Propagated uint64
	// Forwards counts non-lease requests passed through to upstream.
	Forwards uint64
}

// entry is one upstream lease held by the tier.
type entry struct {
	pair     core.ContextPair
	grant    time.Duration
	expire   time.Duration
	negative bool
}

type counters struct {
	hits, misses, negHits, renewals atomic.Uint64
	invalidations, propagated, fwds atomic.Uint64
}

// Tier is one shared intermediate name cache.
type Tier struct {
	name     string
	proc     *kernel.Process
	callback *kernel.Process
	upstream kernel.PID
	leaseLen time.Duration

	// entries is the tier's lease table on the shared radix index
	// (PROTOCOL.md §14): the hit-path lookup is a lock-free descent, so
	// the serving process never contends with the callback process
	// dropping entries. mu guards only the holders map.
	entries *nametree.Tree[entry]
	mu      sync.Mutex
	// holders maps each prefix name to the kernel group of downstream
	// callback pids holding a sub-lease on it.
	holders map[string]kernel.PID

	ctr counters

	// topk is the tier's always-on hot-name sketch (PROTOCOL.md §15):
	// which prefixes this tier is actually absorbing load for.
	topk *namestat.TopK
}

// Start spawns a cache tier on host, fronting the upstream prefix
// server. leaseLen caps the sub-leases the tier grants downstream; the
// effective sub-lease is the minimum of leaseLen and the remaining
// upstream lease, so the hierarchy never widens the staleness bound.
func Start(host *kernel.Host, name string, upstream kernel.PID, leaseLen time.Duration) (*Tier, error) {
	if leaseLen <= 0 {
		return nil, fmt.Errorf("ncache: sub-lease length must be positive")
	}
	t := &Tier{
		name:     name,
		upstream: upstream,
		leaseLen: leaseLen,
		entries:  nametree.New[entry](),
		holders:  make(map[string]kernel.PID),
		topk:     namestat.NewTopK(32),
	}
	cb, err := host.Spawn(name+"/upstream-cb", t.serveUpstream)
	if err != nil {
		return nil, err
	}
	t.callback = cb
	main, err := host.Spawn(name, t.serve)
	if err != nil {
		cb.Destroy()
		return nil, err
	}
	t.proc = main
	return t, nil
}

// PID returns the tier's serving pid — what clients use as their prefix
// server address.
func (t *Tier) PID() kernel.PID { return t.proc.PID() }

// Callback returns the pid of the tier's upstream-callback process.
func (t *Tier) Callback() kernel.PID { return t.callback.PID() }

// Stop destroys both tier processes (leaving their group memberships via
// the kernel's destroy path).
func (t *Tier) Stop() {
	t.proc.Destroy()
	t.callback.Destroy()
}

// Stats returns a snapshot of the tier counters.
func (t *Tier) Stats() Stats {
	return Stats{
		Hits:          t.ctr.hits.Load(),
		Misses:        t.ctr.misses.Load(),
		NegativeHits:  t.ctr.negHits.Load(),
		Renewals:      t.ctr.renewals.Load(),
		Invalidations: t.ctr.invalidations.Load(),
		Propagated:    t.ctr.propagated.Load(),
		Forwards:      t.ctr.fwds.Load(),
	}
}

// TopNames returns the tier's hot-name sketch: the prefixes this tier
// has served the most lease requests for, by estimated count.
func (t *Tier) TopNames() []namestat.Item {
	return t.topk.Snapshot()
}

// serve is the tier's main loop.
func (t *Tier) serve(p *kernel.Process) {
	for {
		msg, from, err := p.Receive()
		if err != nil {
			return
		}
		t.serveOne(p, msg, from)
	}
}

// serveOne handles one request: lease-flagged bare-prefix MapContexts
// are served from the tier table, everything else is forwarded upstream
// (the reply then flows directly from the prefix server to the client,
// the standard forwarding convention).
func (t *Tier) serveOne(p *kernel.Process, msg *proto.Message, from kernel.PID) {
	tr := p.Tracer()
	var sp trace.SpanID
	if tr != nil {
		sp = tr.Start(p.PendingSpan(from), trace.KindServe, msg.Op.String(), p.Now(), p.TraceID())
		p.SetCurrentSpan(sp)
	}
	p.ChargeCompute(p.Kernel().Model().ServerDispatchCost)

	pfx, cb, ok := t.leaseWanted(msg)
	if !ok {
		t.ctr.fwds.Add(1)
		t.metric(p, "ncache_forwards_total").Inc()
		_ = p.Forward(msg, from, t.upstream)
		if tr != nil {
			tr.End(sp, p.Now())
			p.SetCurrentSpan(0)
		}
		return
	}

	reply := t.serveLease(p, pfx, cb)
	if tr != nil {
		class := ""
		if reply.Op != proto.ReplyOK {
			class = reply.Op.String()
		}
		tr.Fail(sp, p.Now(), class)
	}
	_ = p.Reply(reply, from)
	if tr != nil {
		p.SetCurrentSpan(0)
	}
}

// leaseWanted reports whether msg is a lease request the tier can serve
// from its table: a MapContext of a bare prefix carrying a lease
// request.
func (t *Tier) leaseWanted(msg *proto.Message) (string, kernel.PID, bool) {
	if msg.Op != proto.OpMapContext {
		return "", kernel.NilPID, false
	}
	cb, ok := proto.LeaseRequest(msg)
	if !ok {
		return "", kernel.NilPID, false
	}
	name, index, err := proto.CSName(msg)
	if err != nil || index >= len(name) || name[index] != prefix.Marker {
		return "", kernel.NilPID, false
	}
	pfx, rest, err := prefix.Parse(name, index)
	if err != nil || rest < len(name) {
		return "", kernel.NilPID, false
	}
	return pfx, kernel.PID(cb), true
}

// serveLease answers one lease request, from the tier table on a hit or
// through the upstream server on a miss, re-granting a sub-lease bounded
// by the backing upstream lease.
func (t *Tier) serveLease(p *kernel.Process, pfx string, cb kernel.PID) *proto.Message {
	p.ChargeCompute(p.Kernel().Model().PrefixRewriteCost)
	now := p.Now()
	t.topk.Observe(pfx)
	e, found := t.entries.Get(pfx)
	if found && now >= e.expire {
		t.entries.Delete(pfx)
		found = false
		t.ctr.renewals.Add(1)
	}

	if found {
		if e.negative {
			t.ctr.negHits.Add(1)
			t.metric(p, "ncache_negative_hits_total").Inc()
			t.leaseEvent(p, "negative-hit", pfx, now, e)
			reply := core.ErrorReplyMsg(fmt.Errorf("prefix %q: %w", pfx, proto.ErrNotFound))
			t.subGrant(p, reply, pfx, cb, now, e)
			return reply
		}
		t.ctr.hits.Add(1)
		t.metric(p, "ncache_hits_total").Inc()
		t.leaseEvent(p, "hit", pfx, now, e)
		reply := core.OkReply()
		proto.SetMapContextReply(reply, uint32(e.pair.Server), uint32(e.pair.Ctx))
		t.subGrant(p, reply, pfx, cb, now, e)
		return reply
	}

	// Miss (or lapsed entry): take a fresh upstream lease in the tier's
	// own name — the upstream callback is the tier's, not the client's —
	// then relay the reply downstream under a sub-lease.
	t.ctr.misses.Add(1)
	t.metric(p, "ncache_misses_total").Inc()
	mreq := &proto.Message{Op: proto.OpMapContext}
	proto.SetCSName(mreq, uint32(core.CtxDefault), prefix.Quote(pfx))
	proto.SetLeaseRequest(mreq, uint32(t.callback.PID()))
	mreply, err := p.Send(mreq, t.upstream)
	if err != nil {
		return core.ErrorReplyMsg(fmt.Errorf("prefix %q: %w", pfx, err))
	}
	granted := p.Now()
	expire, stamped := proto.LeaseGrant(mreply)
	if !stamped {
		// An upstream without lease support: relay the answer unstamped —
		// the client will use it without caching, and the tier caches
		// nothing it cannot be called back about.
		return mreply
	}
	ne := entry{grant: granted, expire: time.Duration(expire)}
	switch {
	case mreply.Op == proto.ReplyOK:
		pid, ctx := proto.GetMapContextReply(mreply)
		ne.pair = core.ContextPair{Server: kernel.PID(pid), Ctx: core.ContextID(ctx)}
	case mreply.Op == proto.ReplyNotFound:
		ne.negative = true
	default:
		return mreply // stamped but not cacheable: relay as-is
	}
	t.entries.Insert(pfx, ne)
	t.leaseEvent(p, "grant", pfx, granted, ne)
	t.subGrant(p, mreply, pfx, cb, granted, ne)
	return mreply
}

// subGrant stamps reply with a sub-lease expiring at the earlier of the
// tier's sub-lease length and the backing upstream lease, and registers
// the downstream callback as a holder.
func (t *Tier) subGrant(p *kernel.Process, reply *proto.Message, pfx string, cb kernel.PID, now time.Duration, e entry) {
	sub := now + t.leaseLen
	if e.expire < sub {
		sub = e.expire
	}
	proto.SetLeaseGrant(reply, int64(sub))
	k := p.Kernel()
	t.mu.Lock()
	gid, ok := t.holders[pfx]
	if !ok {
		gid = k.CreateGroup()
		t.holders[pfx] = gid
	}
	t.mu.Unlock()
	_ = k.JoinGroup(gid, cb)
}

// serveUpstream is the callback process body: an OpCacheInvalidate from
// the upstream server drops the tier entry and propagates to the tier's
// own holders — waiting for every reachable one — before acknowledging,
// so the upstream barrier covers the whole subtree.
func (t *Tier) serveUpstream(p *kernel.Process) {
	for {
		msg, from, err := p.Receive()
		if err != nil {
			return
		}
		tr := p.Tracer()
		var sp trace.SpanID
		if tr != nil {
			sp = tr.Start(p.PendingSpan(from), trace.KindServe, msg.Op.String(), p.Now(), p.TraceID())
			p.SetCurrentSpan(sp)
		}
		reply := &proto.Message{Op: proto.ReplyOK}
		if msg.Op == proto.OpCacheInvalidate {
			name, commit, derr := proto.CacheInvalidate(msg)
			if derr != nil {
				reply.Op = proto.ReplyBadArgs
			} else {
				t.entries.Delete(name)
				t.mu.Lock()
				gid, held := t.holders[name]
				t.mu.Unlock()
				t.ctr.invalidations.Add(1)
				t.metric(p, "ncache_invalidations_total").Inc()
				p.Kernel().Flight().Record(p.Now(), flight.KindInvalidate, name, t.name, "tier")
				if tr != nil {
					tr.Event(sp, trace.KindLease, "callback "+name, p.Now(), p.TraceID(), "")
				}
				if held {
					fwd := &proto.Message{}
					proto.SetCacheInvalidate(fwd, name, commit)
					if n, err := p.SendGroupAll(fwd, gid); err == nil && n > 0 {
						t.ctr.propagated.Add(uint64(n))
						t.metric(p, "ncache_propagated_total").Add(uint64(n))
					}
				}
			}
		} else {
			reply.Op = proto.ReplyIllegalRequest
		}
		if tr != nil {
			class := ""
			if reply.Op != proto.ReplyOK {
				class = reply.Op.String()
			}
			tr.Fail(sp, p.Now(), class)
			p.SetCurrentSpan(0)
		}
		if p.Reply(reply, from) != nil {
			return
		}
	}
}

// leaseEvent records a zero-length lease span carrying the entry stamp.
func (t *Tier) leaseEvent(p *kernel.Process, event, pfx string, at time.Duration, e entry) {
	tr := p.Tracer()
	if tr == nil {
		return
	}
	sp := tr.Event(p.CurrentSpan(), trace.KindLease, event+" "+pfx, at, p.TraceID(), "")
	tr.SetLease(sp, e.grant, e.expire)
}

// metric resolves a tier counter labelled with the tier process and tier
// class.
func (t *Tier) metric(p *kernel.Process, name string) *metrics.Counter {
	return p.Kernel().Metrics().Counter(name, metrics.Labels{Server: t.name, Class: "tier"})
}
