package ncache_test

import (
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/rig"
)

// bootTiered builds the shared-prefix topology with the lease hierarchy
// and the intermediate tier interposed: every client addresses the tier,
// which holds the upstream leases.
func bootTiered(t *testing.T, lease time.Duration) *rig.SharedPrefixWorkload {
	t.Helper()
	sw, err := rig.NewSharedPrefixWorkload(rig.SharedPrefixConfig{
		Shards: 2, ClientsPerShard: 3, Requests: 8, Seed: 11,
		Lease: lease, CacheTier: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sw
}

// TestTierAmortizesUpstreamLeases drives the tiered workload and checks
// the amortization the tier exists for: every client's first lookup of
// its shard prefix reaches the tier, but only the first per prefix walks
// on to the prefix server — one upstream lease serves all co-tier
// clients.
func TestTierAmortizesUpstreamLeases(t *testing.T) {
	sw := bootTiered(t, 500*time.Millisecond)
	res := rig.RunWorkload(sw.Clients)
	for i, st := range res.Clients {
		if st.Errors != 0 {
			t.Fatalf("client %d: %d errors", i, st.Errors)
		}
	}
	ts := sw.Tier.Stats()
	if ts.Misses != 2 {
		t.Fatalf("tier misses = %d, want one per shard prefix: %+v", ts.Misses, ts)
	}
	if want := uint64(2*3 - 2); ts.Hits != want {
		t.Fatalf("tier hits = %d, want %d (every later client's first lookup): %+v", ts.Hits, want, ts)
	}
	if srv := sw.Prefix.LeaseStats(); srv.Grants != 2 {
		t.Fatalf("upstream grants = %d, want exactly one per prefix: %+v", srv.Grants, srv)
	}
	// Clients never re-walked within the lease window: one miss each,
	// everything else answered by their own lease caches.
	for i, wc := range sw.Clients {
		cs := wc.Session.LeaseCacheStats()
		if cs.Misses != 1 || cs.Hits != wc.Requests-1 {
			t.Fatalf("client %d lease stats: %+v", i, cs)
		}
	}
}

// TestTierSubLeaseBounded checks the hierarchy's staleness contract: the
// sub-lease a client holds never outlives the configured lease length
// from its own grant observation, even though it was cut from an
// upstream lease granted earlier.
func TestTierSubLeaseBounded(t *testing.T) {
	lease := 300 * time.Millisecond
	sw := bootTiered(t, lease)
	rig.RunWorkload(sw.Clients)
	name := "[shard0]" + rig.ShardHotPath
	for i, wc := range sw.Clients[:3] {
		exp, ok := wc.Session.LeaseExpiry(name)
		if !ok {
			t.Fatalf("client %d holds no lease", i)
		}
		if exp > wc.Session.Proc().Now()+lease {
			t.Fatalf("client %d sub-lease expiry %v exceeds now+%v", i, exp, lease)
		}
	}
}

// TestTierInvalidationChain deletes a prefix through the tier and checks
// the full callback chain: the prefix server notifies the tier's
// upstream callback, the tier drops its entry and propagates to every
// downstream holder, and only then does the delete return — all three
// cache levels coherent at the mutation's commit.
func TestTierInvalidationChain(t *testing.T) {
	sw := bootTiered(t, 500*time.Millisecond)
	rig.RunWorkload(sw.Clients)

	proc, err := sw.PrefixHost.NewProcess("admin")
	if err != nil {
		t.Fatal(err)
	}
	admin := client.New(proc, sw.Tier.PID(), sw.Shards[0].RootPair(), "admin")
	if err := admin.DeleteName("shard0"); err != nil {
		t.Fatal(err)
	}

	ts := sw.Tier.Stats()
	if ts.Invalidations != 1 {
		t.Fatalf("tier invalidations = %d: %+v", ts.Invalidations, ts)
	}
	if ts.Propagated != 3 {
		t.Fatalf("tier propagated to %d holders, want the 3 shard0 clients: %+v", ts.Propagated, ts)
	}
	// The delete itself was a non-lease request: forwarded upstream.
	if ts.Forwards != 1 {
		t.Fatalf("tier forwards = %d: %+v", ts.Forwards, ts)
	}
	if srv := sw.Prefix.LeaseStats(); srv.Invalidations != 1 || srv.HoldersNotified != 1 {
		t.Fatalf("upstream lease stats: %+v", srv)
	}
	name := "[shard0]" + rig.ShardHotPath
	for i := 0; i < 3; i++ {
		s := sw.Clients[i].Session
		if s.LeaseCacheStats().Invalidations != 1 {
			t.Fatalf("shard0 client %d not called back: %+v", i, s.LeaseCacheStats())
		}
		if _, ok := s.LeaseExpiry(name); ok {
			t.Fatalf("shard0 client %d still holds the deleted lease", i)
		}
	}
	for i := 3; i < 6; i++ {
		if sw.Clients[i].Session.LeaseCacheStats().Invalidations != 0 {
			t.Fatalf("shard1 client %d wrongly called back", i)
		}
	}
}
