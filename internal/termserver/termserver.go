// Package termserver implements the V-System virtual graphics terminal
// server (§3, §6): a server providing a small number of transient objects
// — virtual terminals — named by short numeric object instance
// identifiers generated at creation time, with character-string names
// derived from them (§4.3).
//
// It is one of the simple local server processes every workstation runs,
// and one of the context types the single "list directory" command can
// list (§6).
package termserver

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/proto"
	"repro/internal/vio"
)

// CreateName is the distinguished name opened with ModeCreate to
// allocate a new virtual terminal.
const CreateName = "new"

// terminal is one virtual terminal: a screen buffer plus an input queue.
type terminal struct {
	mu     sync.Mutex
	id     uint32
	name   string
	screen []byte
	owner  string
}

// Server is the virtual graphics terminal server.
type Server struct {
	srv   *core.Server
	proc  *kernel.Process
	store *core.MapStore
	reg   *vio.Registry

	mu    sync.Mutex
	terms map[uint32]*terminal
	next  uint32
}

// Start spawns a terminal server on host. Options (e.g. core.WithTeam)
// configure the serving runtime.
func Start(host *kernel.Host, opts ...core.Option) (*Server, error) {
	proc, err := host.NewProcess("vgt-server")
	if err != nil {
		return nil, err
	}
	s := &Server{
		proc:  proc,
		store: core.NewMapStore(),
		reg:   vio.NewRegistry(),
		terms: make(map[uint32]*terminal),
	}
	s.srv = core.NewServer(proc, s.store, s, opts...)
	if err := s.srv.Start(); err != nil {
		return nil, err
	}
	if err := proc.SetPid(kernel.ServiceTerminal, proc.PID(), kernel.ScopeLocal); err != nil {
		return nil, err
	}
	return s, nil
}

// PID returns the server's process identifier.
func (s *Server) PID() kernel.PID { return s.proc.PID() }

// Err reports why the server stopped serving (see core.Server.Err).
func (s *Server) Err() error { return s.srv.Err() }

// RootPair returns the server's single context.
func (s *Server) RootPair() core.ContextPair { return s.srv.Pair(core.CtxDefault) }

// Count returns the number of live terminals.
func (s *Server) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.terms)
}

// Screen returns a copy of the named terminal's screen contents (test and
// example support).
func (s *Server) Screen(name string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, t := range s.terms {
		if t.name == name {
			t.mu.Lock()
			out := append([]byte(nil), t.screen...)
			t.mu.Unlock()
			return out, nil
		}
	}
	return nil, fmt.Errorf("%q: %w", name, proto.ErrNotFound)
}

// create allocates a terminal. Terminal names are derived from the
// numeric object instance identifier chosen by the server (§4.3).
func (s *Server) create(owner string) *terminal {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.next++
	t := &terminal{id: s.next, name: fmt.Sprintf("vgt%d", s.next), owner: owner}
	s.terms[t.id] = t
	if err := s.store.Bind(core.CtxDefault, t.name, core.ObjectEntry(proto.TagTerminal, t.id)); err != nil {
		// Name collision is impossible: ids are unique.
		panic(err)
	}
	return t
}

func (s *Server) describe(t *terminal) proto.Descriptor {
	t.mu.Lock()
	defer t.mu.Unlock()
	return proto.Descriptor{
		Tag:      proto.TagTerminal,
		ObjectID: t.id,
		Name:     t.name,
		Owner:    t.owner,
		Size:     uint32(len(t.screen)),
		Perms:    proto.PermRead | proto.PermWrite,
	}
}

// HandleNamed implements core.Handler.
func (s *Server) HandleNamed(req *core.Request, res *core.Resolution) *proto.Message {
	switch req.Msg.Op {
	case proto.OpCreateInstance:
		mode := proto.OpenMode(req.Msg)
		if mode&proto.ModeDirectory != 0 {
			if _, err := res.ContextOf(); err != nil {
				return core.ErrorReplyMsg(err)
			}
			pattern, err := proto.DirPattern(req.Msg)
			if err != nil {
				return core.ErrorReplyMsg(err)
			}
			return s.openDirectory(req.Proc(), res.Name, pattern)
		}
		if res.Last == CreateName && res.Entry == nil && mode&proto.ModeCreate != 0 {
			t := s.create("")
			return s.openTerminal(t.id, t.name)
		}
		if res.Entry == nil || res.Entry.Object == nil {
			return core.ErrorReplyMsg(proto.ErrNotFound)
		}
		return s.openTerminal(res.Entry.Object.ID, res.Last)

	case proto.OpQueryObject:
		if res.Entry == nil || res.Entry.Object == nil {
			return core.ErrorReplyMsg(proto.ErrNotFound)
		}
		s.mu.Lock()
		t := s.terms[res.Entry.Object.ID]
		s.mu.Unlock()
		if t == nil {
			return core.ErrorReplyMsg(proto.ErrNotFound)
		}
		req.Proc().ChargeCompute(req.Proc().Kernel().Model().DescriptorFabricateCost)
		d := s.describe(t)
		reply := core.OkReply()
		reply.Segment = d.AppendEncoded(nil)
		return reply

	case proto.OpRemoveObject:
		if res.Entry == nil || res.Entry.Object == nil {
			return core.ErrorReplyMsg(proto.ErrNotFound)
		}
		s.mu.Lock()
		delete(s.terms, res.Entry.Object.ID)
		s.mu.Unlock()
		if err := s.store.Unbind(core.CtxDefault, res.Last); err != nil {
			return core.ErrorReplyMsg(err)
		}
		return core.OkReply()

	default:
		return core.ErrorReplyMsg(proto.ErrIllegalRequest)
	}
}

// HandleOp implements core.Handler.
func (s *Server) HandleOp(req *core.Request) *proto.Message {
	if reply := s.reg.HandleOp(req.Proc(), req.Msg); reply != nil {
		return reply
	}
	return core.ErrorReplyMsg(proto.ErrIllegalRequest)
}

// openTerminal opens a terminal as a V I/O instance: reads return the
// screen contents, writes append to the screen.
func (s *Server) openTerminal(id uint32, name string) *proto.Message {
	s.mu.Lock()
	t := s.terms[id]
	s.mu.Unlock()
	if t == nil {
		return core.ErrorReplyMsg(proto.ErrNotFound)
	}
	iid, err := s.reg.Open(&termInstance{t: t}, name)
	if err != nil {
		return core.ErrorReplyMsg(err)
	}
	inst, _ := s.reg.Get(iid)
	info := inst.Info()
	info.ID = iid
	reply := core.OkReply()
	proto.SetInstanceInfo(reply, info)
	proto.SetInstanceOwner(reply, uint32(s.proc.PID()))
	return reply
}

func (s *Server) openDirectory(p *kernel.Process, name, pattern string) *proto.Message {
	s.mu.Lock()
	ids := make([]uint32, 0, len(s.terms))
	for id := range s.terms {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	records := make([]proto.Descriptor, 0, len(ids))
	s.mu.Lock()
	for _, id := range ids {
		if t := s.terms[id]; t != nil {
			records = append(records, s.describe(t))
		}
	}
	s.mu.Unlock()
	records = core.FilterRecords(records, pattern)
	model := p.Kernel().Model()
	p.ChargeCompute(time.Duration(len(records)) * model.DescriptorFabricateCost)
	iid, err := s.reg.Open(vio.NewDirectoryInstance(records, nil), name)
	if err != nil {
		return core.ErrorReplyMsg(err)
	}
	inst, _ := s.reg.Get(iid)
	info := inst.Info()
	info.ID = iid
	reply := core.OkReply()
	proto.SetInstanceInfo(reply, info)
	proto.SetInstanceOwner(reply, uint32(s.proc.PID()))
	return reply
}

// termInstance adapts a terminal to the V I/O instance interface.
type termInstance struct {
	t *terminal
}

func (ti *termInstance) Info() proto.InstanceInfo {
	ti.t.mu.Lock()
	defer ti.t.mu.Unlock()
	return proto.InstanceInfo{
		SizeBytes: uint32(len(ti.t.screen)),
		BlockSize: vio.DefaultBlockSize,
		Flags:     proto.ModeRead | proto.ModeWrite,
	}
}

func (ti *termInstance) ReadAt(_ *kernel.Process, off int64, buf []byte) (int, error) {
	ti.t.mu.Lock()
	defer ti.t.mu.Unlock()
	if off >= int64(len(ti.t.screen)) {
		return 0, proto.ErrEndOfFile
	}
	return copy(buf, ti.t.screen[off:]), nil
}

// WriteAt appends to the screen regardless of offset: a terminal is a
// stream sink, not a random-access store.
func (ti *termInstance) WriteAt(_ *kernel.Process, _ int64, data []byte) (int, error) {
	ti.t.mu.Lock()
	defer ti.t.mu.Unlock()
	ti.t.screen = append(ti.t.screen, data...)
	return len(data), nil
}

func (ti *termInstance) Release() {}

var (
	_ vio.Instance = (*termInstance)(nil)
	_ core.Handler = (*Server)(nil)
)
