package termserver

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/proto"
	"repro/internal/vio"
	"repro/internal/vtime"
)

// TestTeamStressTermServer creates terminals and writes screens from
// many concurrent client processes against one term-server team.
func TestTeamStressTermServer(t *testing.T) {
	k := kernel.New(netsim.New(vtime.DefaultModel(), 1))
	host := k.NewHost("ws")
	s, err := Start(host, core.WithTeam(3))
	if err != nil {
		t.Fatal(err)
	}

	const clients, writes = 5, 4
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		proc, err := k.NewHost(fmt.Sprintf("remote%d", i)).NewProcess("client")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(proc.Destroy)
		wg.Add(1)
		go func(i int, proc *kernel.Process) {
			defer wg.Done()
			req := &proto.Message{Op: proto.OpCreateInstance}
			proto.SetCSName(req, uint32(core.CtxDefault), CreateName)
			proto.SetOpenMode(req, proto.ModeRead|proto.ModeWrite|proto.ModeCreate)
			reply, err := proc.Send(req, s.PID())
			if err != nil || proto.ReplyError(reply.Op) != nil {
				errs <- fmt.Errorf("client %d create: %v, %v", i, reply, err)
				return
			}
			f := vio.NewFile(proc, s.PID(), proto.GetInstanceInfo(reply))
			for j := 0; j < writes; j++ {
				if _, err := f.Write([]byte(fmt.Sprintf("c%d line %d\n", i, j))); err != nil {
					errs <- fmt.Errorf("client %d write %d: %w", i, j, err)
					return
				}
			}
			if err := f.Close(); err != nil {
				errs <- fmt.Errorf("client %d close: %w", i, err)
			}
		}(i, proc)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := s.Count(); got != clients {
		t.Fatalf("terminals = %d, want %d", got, clients)
	}
}
