package termserver

import (
	"testing"

	"repro/internal/core"
	"repro/internal/proto"
	"repro/internal/trace"
	"repro/internal/trace/tracetest"
	"repro/internal/vio"
)

// TestTraceInvariantsTermServer creates a terminal and writes lines to
// it in a traced domain, then checks the trace invariants and the
// team's handoff spans.
func TestTraceInvariantsTermServer(t *testing.T) {
	d := tracetest.New()
	s, err := Start(d.K.NewHost("ws"), core.WithTeam(2))
	if err != nil {
		t.Fatal(err)
	}
	proc, err := d.K.NewHost("remote").NewProcess("client")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(proc.Destroy)

	req := &proto.Message{Op: proto.OpCreateInstance}
	proto.SetCSName(req, uint32(core.CtxDefault), CreateName)
	proto.SetOpenMode(req, proto.ModeRead|proto.ModeWrite|proto.ModeCreate)
	reply, err := proc.Send(req, s.PID())
	if err != nil || proto.ReplyError(reply.Op) != nil {
		t.Fatalf("create: %v, %v", reply, err)
	}
	f := vio.NewFile(proc, s.PID(), proto.GetInstanceInfo(reply))
	const writes = 3
	for j := 0; j < writes; j++ {
		if _, err := f.Write([]byte("traced line\n")); err != nil {
			t.Fatalf("write %d: %v", j, err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	spans := d.Check(t)
	tracetest.Require(t, spans, trace.KindSend, writes+2)
	tracetest.Require(t, spans, trace.KindServe, writes+2)
	tracetest.Require(t, spans, trace.KindReply, writes+2)
	tracetest.Require(t, spans, trace.KindHandoff, 1)
}
