package termserver

import (
	"testing"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/proto"
	"repro/internal/vio"
	"repro/internal/vtime"
)

func startRig(t *testing.T) (*Server, *kernel.Process) {
	t.Helper()
	k := kernel.New(netsim.New(vtime.DefaultModel(), 1))
	host := k.NewHost("ws")
	s, err := Start(host)
	if err != nil {
		t.Fatal(err)
	}
	client, err := host.NewProcess("client")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Destroy() })
	return s, client
}

func open(t *testing.T, client *kernel.Process, s *Server, name string, mode uint32) *vio.File {
	t.Helper()
	req := &proto.Message{Op: proto.OpCreateInstance}
	proto.SetCSName(req, uint32(core.CtxDefault), name)
	proto.SetOpenMode(req, mode)
	reply, err := client.Send(req, s.PID())
	if err != nil {
		t.Fatal(err)
	}
	if err := proto.ReplyError(reply.Op); err != nil {
		t.Fatalf("open %q: %v", name, err)
	}
	return vio.NewFile(client, s.PID(), proto.GetInstanceInfo(reply))
}

func TestCreateTerminalNamesFromInstanceID(t *testing.T) {
	s, client := startRig(t)
	f1 := open(t, client, s, CreateName, proto.ModeRead|proto.ModeWrite|proto.ModeCreate)
	f2 := open(t, client, s, CreateName, proto.ModeRead|proto.ModeWrite|proto.ModeCreate)
	defer f1.Close()
	defer f2.Close()
	if s.Count() != 2 {
		t.Fatalf("terminals = %d", s.Count())
	}
	// §4.3: names derive from server-generated numeric identifiers.
	if _, err := s.Screen("vgt1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Screen("vgt2"); err != nil {
		t.Fatal(err)
	}
}

func TestWriteAppendsToScreen(t *testing.T) {
	s, client := startRig(t)
	f := open(t, client, s, CreateName, proto.ModeWrite|proto.ModeCreate)
	if _, err := f.Write([]byte("line one\n")); err != nil {
		t.Fatal(err)
	}
	// Writes append regardless of file position.
	if _, err := f.Write([]byte("line two\n")); err != nil {
		t.Fatal(err)
	}
	screen, err := s.Screen("vgt1")
	if err != nil || string(screen) != "line one\nline two\n" {
		t.Fatalf("screen = %q, %v", screen, err)
	}
}

func TestReopenExistingTerminal(t *testing.T) {
	s, client := startRig(t)
	f := open(t, client, s, CreateName, proto.ModeWrite|proto.ModeCreate)
	if _, err := f.Write([]byte("persistent")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	f2 := open(t, client, s, "vgt1", proto.ModeRead)
	got, err := f2.ReadAll()
	if err != nil || string(got) != "persistent" {
		t.Fatalf("read %q, %v", got, err)
	}
}

func TestOpenMissingTerminal(t *testing.T) {
	s, client := startRig(t)
	req := &proto.Message{Op: proto.OpCreateInstance}
	proto.SetCSName(req, uint32(core.CtxDefault), "vgt99")
	proto.SetOpenMode(req, proto.ModeRead)
	reply, err := client.Send(req, s.PID())
	if err != nil || reply.Op != proto.ReplyNotFound {
		t.Fatalf("reply = %v, %v", reply, err)
	}
}

func TestQueryAndRemove(t *testing.T) {
	s, client := startRig(t)
	f := open(t, client, s, CreateName, proto.ModeWrite|proto.ModeCreate)
	if _, err := f.Write([]byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	q := &proto.Message{Op: proto.OpQueryObject}
	proto.SetCSName(q, uint32(core.CtxDefault), "vgt1")
	reply, err := client.Send(q, s.PID())
	if err != nil || reply.Op != proto.ReplyOK {
		t.Fatalf("query = %v, %v", reply, err)
	}
	d, _, err := proto.DecodeDescriptor(reply.Segment)
	if err != nil || d.Tag != proto.TagTerminal || d.Size != 10 {
		t.Fatalf("descriptor = %+v, %v", d, err)
	}

	rm := &proto.Message{Op: proto.OpRemoveObject}
	proto.SetCSName(rm, uint32(core.CtxDefault), "vgt1")
	reply, err = client.Send(rm, s.PID())
	if err != nil || reply.Op != proto.ReplyOK {
		t.Fatalf("remove = %v, %v", reply, err)
	}
	if s.Count() != 0 {
		t.Fatal("terminal survived removal")
	}
}

func TestDirectoryListsTerminalsSorted(t *testing.T) {
	s, client := startRig(t)
	for i := 0; i < 3; i++ {
		open(t, client, s, CreateName, proto.ModeCreate|proto.ModeWrite)
	}
	dir := open(t, client, s, "", proto.ModeRead|proto.ModeDirectory)
	raw, err := dir.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	records, err := proto.DecodeDescriptors(raw)
	if err != nil || len(records) != 3 {
		t.Fatalf("records = %v, %v", records, err)
	}
	for i, want := range []string{"vgt1", "vgt2", "vgt3"} {
		if records[i].Name != want {
			t.Fatalf("records[%d] = %q", i, records[i].Name)
		}
	}
}

func TestScreenOfUnknownTerminal(t *testing.T) {
	s, _ := startRig(t)
	if _, err := s.Screen("vgt9"); err == nil {
		t.Fatal("expected error")
	}
}
