package nametree

// Reverse is the binding→names side of the index: for each value key K
// (a context pair, a server id, …) it tracks the set of names bound to
// it and the lexicographically smallest of them. First answers the
// inverse-resolution question — "which name maps to this binding?" —
// with the exact sorted-order tie-break the linear first-match scan
// over a sorted name table used to give, in O(1) instead of O(n).
//
// Add is O(1). Remove is O(1) unless it removes the current minimum, in
// which case the set is rescanned (deletes are rare on name servers;
// population setup must not be quadratic). Reverse is not safe for
// concurrent use — callers guard it with the same mutex that serializes
// their tree writes.
type Reverse[K comparable] struct {
	m map[K]*revSet
}

type revSet struct {
	names map[string]struct{}
	min   string
}

// NewReverse returns an empty reverse index.
func NewReverse[K comparable]() *Reverse[K] {
	return &Reverse[K]{m: make(map[K]*revSet)}
}

// Add records that name is bound to k.
func (r *Reverse[K]) Add(k K, name string) {
	s := r.m[k]
	if s == nil {
		s = &revSet{names: make(map[string]struct{})}
		r.m[k] = s
	}
	if len(s.names) == 0 || name < s.min {
		s.min = name
	}
	s.names[name] = struct{}{}
}

// Remove drops name from k's set (a no-op if absent).
func (r *Reverse[K]) Remove(k K, name string) {
	s := r.m[k]
	if s == nil {
		return
	}
	if _, ok := s.names[name]; !ok {
		return
	}
	delete(s.names, name)
	if len(s.names) == 0 {
		delete(r.m, k)
		return
	}
	if name == s.min {
		first := true
		for n := range s.names {
			if first || n < s.min {
				s.min = n
				first = false
			}
		}
	}
}

// First returns the lexicographically smallest name bound to k.
func (r *Reverse[K]) First(k K) (string, bool) {
	s := r.m[k]
	if s == nil {
		return "", false
	}
	return s.min, true
}

// Count returns how many names are bound to k.
func (r *Reverse[K]) Count(k K) int {
	s := r.m[k]
	if s == nil {
		return 0
	}
	return len(s.names)
}
