// Package nametree is the population-scale name index (PROTOCOL.md
// §14): a compressed radix (patricia) tree over string keys with
// copy-on-write nodes behind an atomically swapped root.
//
// The paper's prefix table was 2.6 KB of MC68000 data (§6); the
// population-scale workloads (ROADMAP items 2–3) resolve against
// 10⁵–10⁶ names, where the flat map tables the servers grew up with
// become hot-path liabilities: snapshot rebuilds, full copies under the
// server mutex, and linear first-match scans. The radix index replaces
// them with one structure serving every access pattern the name servers
// have:
//
//   - Get is the resolution fast path: lock-free (an atomic root load
//     and a pointer descent over immutable nodes) and zero-allocation,
//     so a server team's workers and a client's classifier probes never
//     contend with writers or with each other.
//   - LongestPrefix finds the longest registered prefix of a key in
//     O(depth) — the descendant-design lookup (upspin-style
//     tree-structured directories) a flat map cannot answer without
//     probing every prefix length.
//   - Walk iterates a consistent snapshot in lexicographic key order
//     with no lock held, which is what lets directory fabrication,
//     table snapshots and Bindings() run off the immutable tree instead
//     of copying the table under the server mutex.
//   - Len and KeyBytes are atomic counters, so table-size probes
//     (prefix.TableBytes) cost two loads instead of an O(n) scan.
//
// Writers (Insert, Delete) serialize on an internal mutex and publish
// by path-copying the affected spine and atomically swapping the root;
// readers therefore never observe a partially applied mutation, and a
// read overlapped by a write sees exactly the tree before or after it —
// the same semantics a mutex would give, without the reader ever
// blocking.
package nametree

import (
	"sync"
	"sync/atomic"
)

// node is one immutable radix node: the compressed edge label from its
// parent, an optional value, and children sorted by the first byte of
// their labels (sibling labels never share a first byte).
type node[V any] struct {
	label    string
	hasVal   bool
	val      V
	children []*node[V]
}

// Tree is a copy-on-write compressed radix tree from string keys to V.
// The zero value is not ready; use New.
type Tree[V any] struct {
	mu       sync.Mutex // serializes writers; readers never take it
	root     atomic.Pointer[node[V]]
	count    atomic.Int64
	keyBytes atomic.Int64
}

// New returns an empty tree.
func New[V any]() *Tree[V] {
	t := &Tree[V]{}
	t.root.Store(&node[V]{})
	return t
}

// Len returns the number of keys (an atomic load).
func (t *Tree[V]) Len() int { return int(t.count.Load()) }

// KeyBytes returns the summed length of every stored key (an atomic
// load) — the table-size counter servers report without scanning.
func (t *Tree[V]) KeyBytes() int { return int(t.keyBytes.Load()) }

// child returns n's child whose label starts with b, by binary search
// over the sorted child slice.
func (n *node[V]) child(b byte) *node[V] {
	lo, hi := 0, len(n.children)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.children[mid].label[0] < b {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(n.children) && n.children[lo].label[0] == b {
		return n.children[lo]
	}
	return nil
}

// Get returns the value stored under key. It is the resolution hit
// path: lock-free and zero-allocation.
func (t *Tree[V]) Get(key string) (V, bool) {
	n := t.root.Load()
	for {
		if len(key) == 0 {
			if n.hasVal {
				return n.val, true
			}
			var zero V
			return zero, false
		}
		c := n.child(key[0])
		if c == nil || len(key) < len(c.label) || key[:len(c.label)] != c.label {
			var zero V
			return zero, false
		}
		key = key[len(c.label):]
		n = c
	}
}

// GetSteps is Get instrumented with the number of nodes visited during
// the descent (the root counts as one). It is the deterministic
// virtual-cost probe the population-scale experiment reports against
// the flat-table baseline; the uninstrumented Get stays the hot path.
func (t *Tree[V]) GetSteps(key string) (v V, ok bool, steps int) {
	n := t.root.Load()
	steps = 1
	for {
		if len(key) == 0 {
			if n.hasVal {
				return n.val, true, steps
			}
			return v, false, steps
		}
		c := n.child(key[0])
		if c == nil || len(key) < len(c.label) || key[:len(c.label)] != c.label {
			return v, false, steps
		}
		key = key[len(c.label):]
		n = c
		steps++
	}
}

// LongestPrefix returns the longest key in the tree that is a prefix of
// query, as the length of the matched prefix (query[:n]), its value,
// and whether any prefix matched. Like Get it is lock-free and
// zero-allocation.
func (t *Tree[V]) LongestPrefix(query string) (n int, v V, ok bool) {
	cur := t.root.Load()
	consumed := 0
	if cur.hasVal {
		n, v, ok = 0, cur.val, true
	}
	for consumed < len(query) {
		c := cur.child(query[consumed])
		if c == nil {
			break
		}
		rest := query[consumed:]
		if len(rest) < len(c.label) || rest[:len(c.label)] != c.label {
			break
		}
		consumed += len(c.label)
		cur = c
		if cur.hasVal {
			n, v, ok = consumed, cur.val, true
		}
	}
	return n, v, ok
}

// Insert stores v under key, replacing any existing value. It reports
// whether a value was replaced.
func (t *Tree[V]) Insert(key string, v V) (replaced bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	root, replaced := insert(t.root.Load(), key, v)
	t.root.Store(root)
	if !replaced {
		t.count.Add(1)
		t.keyBytes.Add(int64(len(key)))
	}
	return replaced
}

// insert returns a copy of n with v stored under key (relative to n).
func insert[V any](n *node[V], key string, v V) (*node[V], bool) {
	if len(key) == 0 {
		cp := *n
		replaced := cp.hasVal
		cp.hasVal, cp.val = true, v
		return &cp, replaced
	}
	c := n.child(key[0])
	if c == nil {
		leaf := &node[V]{label: key, hasVal: true, val: v}
		return withChild(n, nil, leaf), false
	}
	common := commonPrefix(key, c.label)
	if common == len(c.label) {
		nc, replaced := insert(c, key[common:], v)
		return withChild(n, c, nc), replaced
	}
	// The key diverges inside c's label: split the edge at the fork.
	tail := *c
	tail.label = c.label[common:]
	mid := &node[V]{label: c.label[:common]}
	if common == len(key) {
		mid.hasVal, mid.val = true, v
		mid.children = []*node[V]{&tail}
	} else {
		leaf := &node[V]{label: key[common:], hasVal: true, val: v}
		if leaf.label[0] < tail.label[0] {
			mid.children = []*node[V]{leaf, &tail}
		} else {
			mid.children = []*node[V]{&tail, leaf}
		}
	}
	return withChild(n, c, mid), false
}

// Delete removes key, reporting whether it was present.
func (t *Tree[V]) Delete(key string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	root, removed := remove(t.root.Load(), key)
	if !removed {
		return false
	}
	t.root.Store(root)
	t.count.Add(-1)
	t.keyBytes.Add(int64(-len(key)))
	return true
}

// remove returns a copy of n with key (relative to n) removed,
// re-compressing pass-through nodes so the tree stays canonical.
func remove[V any](n *node[V], key string) (*node[V], bool) {
	if len(key) == 0 {
		if !n.hasVal {
			return n, false
		}
		cp := *n
		cp.hasVal = false
		var zero V
		cp.val = zero
		return &cp, true
	}
	c := n.child(key[0])
	if c == nil || len(key) < len(c.label) || key[:len(c.label)] != c.label {
		return n, false
	}
	nc, removed := remove(c, key[len(c.label):])
	if !removed {
		return n, false
	}
	switch {
	case !nc.hasVal && len(nc.children) == 0:
		nc = nil // prune the emptied leaf
	case !nc.hasVal && len(nc.children) == 1:
		// Re-compress: a valueless single-child node merges with it.
		merged := *nc.children[0]
		merged.label = nc.label + merged.label
		nc = &merged
	}
	return withChild(n, c, nc), true
}

// withChild returns a copy of n with child old replaced by nw (old nil
// inserts nw in sorted position; nw nil deletes old).
func withChild[V any](n *node[V], old, nw *node[V]) *node[V] {
	cp := *n
	if old == nil {
		pos := 0
		for pos < len(n.children) && n.children[pos].label[0] < nw.label[0] {
			pos++
		}
		cp.children = make([]*node[V], 0, len(n.children)+1)
		cp.children = append(cp.children, n.children[:pos]...)
		cp.children = append(cp.children, nw)
		cp.children = append(cp.children, n.children[pos:]...)
		return &cp
	}
	pos := 0
	for n.children[pos] != old {
		pos++
	}
	if nw == nil {
		cp.children = make([]*node[V], 0, len(n.children)-1)
		cp.children = append(cp.children, n.children[:pos]...)
		cp.children = append(cp.children, n.children[pos+1:]...)
		return &cp
	}
	cp.children = make([]*node[V], len(n.children))
	copy(cp.children, n.children)
	cp.children[pos] = nw
	return &cp
}

// commonPrefix returns the length of the longest common prefix of a
// and b.
func commonPrefix(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// Walk visits every key/value pair of one consistent snapshot in
// lexicographic key order, stopping early if fn returns false. No lock
// is held: concurrent mutations do not perturb the walk.
func (t *Tree[V]) Walk(fn func(key string, v V) bool) {
	walk(t.root.Load(), make([]byte, 0, 64), fn)
}

func walk[V any](n *node[V], key []byte, fn func(key string, v V) bool) bool {
	key = append(key, n.label...)
	if n.hasVal && !fn(string(key), n.val) {
		return false
	}
	for _, c := range n.children {
		if !walk(c, key, fn) {
			return false
		}
	}
	return true
}
