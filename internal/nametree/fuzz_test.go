package nametree

import (
	"sort"
	"strings"
	"testing"
)

// FuzzNametreeLookup feeds arbitrary key material (seeded from the
// client cacheKey corpus — bracketed V-System context names) through
// insert/lookup/LPM/delete and cross-checks every answer against a
// plain map. The input is split on '|' into up to 8 keys; every prefix
// of every key is used as a lookup probe so the LPM path is exercised
// at each divergence point.
func FuzzNametreeLookup(f *testing.F) {
	f.Add("[storage]/shared/archive/2026/paper.mss")
	f.Add("[]x")
	f.Add("[home]welcome.txt")
	f.Add("[a][b]nested")
	f.Add("[unterminated")
	f.Add("a|ab|abc|b")
	f.Add("[home]|[home]sub|[h")
	f.Fuzz(func(t *testing.T, input string) {
		keys := strings.Split(input, "|")
		if len(keys) > 8 {
			keys = keys[:8]
		}
		tr := New[int]()
		ref := map[string]int{}
		for i, k := range keys {
			replaced := tr.Insert(k, i)
			if _, had := ref[k]; had != replaced {
				t.Fatalf("Insert(%q) replaced=%v, map had=%v", k, replaced, had)
			}
			ref[k] = i
		}
		if tr.Len() != len(ref) {
			t.Fatalf("Len=%d, map %d", tr.Len(), len(ref))
		}
		lpm := func(q string) (int, int, bool) {
			for n := len(q); n >= 0; n-- {
				if v, ok := ref[q[:n]]; ok {
					return n, v, true
				}
			}
			return 0, 0, false
		}
		for _, k := range keys {
			for cut := 0; cut <= len(k); cut++ {
				q := k[:cut]
				got, ok := tr.Get(q)
				want, wantOK := ref[q]
				if ok != wantOK || (ok && got != want) {
					t.Fatalf("Get(%q) = (%d,%v), map (%d,%v)", q, got, ok, want, wantOK)
				}
				n, v, ok := tr.LongestPrefix(q)
				wn, wv, wok := lpm(q)
				if n != wn || ok != wok || (ok && v != wv) {
					t.Fatalf("LongestPrefix(%q) = (%d,%d,%v), map (%d,%d,%v)", q, n, v, ok, wn, wv, wok)
				}
			}
		}
		// Walk must visit the map's keys in sorted order.
		var walked []string
		tr.Walk(func(k string, _ int) bool { walked = append(walked, k); return true })
		wantKeys := make([]string, 0, len(ref))
		for k := range ref {
			wantKeys = append(wantKeys, k)
		}
		sort.Strings(wantKeys)
		if len(walked) != len(wantKeys) {
			t.Fatalf("Walk visited %d, map has %d", len(walked), len(wantKeys))
		}
		for i := range walked {
			if walked[i] != wantKeys[i] {
				t.Fatalf("Walk[%d]=%q, want %q", i, walked[i], wantKeys[i])
			}
		}
		// Delete everything; the tree must drain to empty.
		for _, k := range keys {
			removed := tr.Delete(k)
			_, had := ref[k]
			if removed != had {
				t.Fatalf("Delete(%q)=%v, map had=%v", k, removed, had)
			}
			delete(ref, k)
		}
		if tr.Len() != 0 || tr.KeyBytes() != 0 {
			t.Fatalf("drained tree: Len=%d KeyBytes=%d", tr.Len(), tr.KeyBytes())
		}
	})
}
