package nametree

import (
	"fmt"
	"math/rand"
	"testing"
)

// population builds n hierarchical names of the shape the popgen
// workloads use, plus a lookup schedule of hits drawn from them.
func population(n int) (names []string, probes []string) {
	vocab := []string{"storage", "home", "pub", "mail", "shared", "archive", "proj", "user"}
	names = make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = fmt.Sprintf("%s.%s.n%d", vocab[i%len(vocab)], vocab[(i/8)%len(vocab)], i)
	}
	r := rand.New(rand.NewSource(42))
	probes = make([]string, 4096)
	for i := range probes {
		probes[i] = names[r.Intn(n)]
	}
	return names, probes
}

// TestResolve10e5ZeroAlloc is the allocs-per-op gate from the issue: a
// hit-path Get against a 10⁵-name index performs zero heap allocations.
// Skipped under -race (the detector's instrumentation allocates).
func TestResolve10e5ZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun counts the race detector's own allocations")
	}
	names, probes := population(100_000)
	tr := New[int]()
	for i, n := range names {
		tr.Insert(n, i)
	}
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		q := probes[i%len(probes)]
		if _, ok := tr.Get(q); !ok {
			t.Fatalf("miss on %q", q)
		}
		if _, _, ok := tr.LongestPrefix(q); !ok {
			t.Fatalf("LPM miss on %q", q)
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("radix hit path allocates %v allocs/op, want 0", allocs)
	}
}

// BenchmarkResolve10e5 measures the radix hit path against a 10⁵-name
// index — the wall-clock side of the A18 virtual-cost comparison.
func BenchmarkResolve10e5(b *testing.B) {
	names, probes := population(100_000)
	tr := New[int]()
	for i, n := range names {
		tr.Insert(n, i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := tr.Get(probes[i%len(probes)]); !ok {
			b.Fatal("miss")
		}
	}
}

// BenchmarkResolveFlatMap10e5 is the wall-clock baseline: the flat
// map[string]V hit path the servers used before the radix index. It
// answers exact-match only — no longest-prefix, no ordered walk, and
// every snapshot (Bindings, sortedNames) was a full O(n) copy on top.
func BenchmarkResolveFlatMap10e5(b *testing.B) {
	names, probes := population(100_000)
	m := make(map[string]int, len(names))
	for i, n := range names {
		m[n] = i
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := m[probes[i%len(probes)]]; !ok {
			b.Fatal("miss")
		}
	}
}

// BenchmarkInsert10e5 measures COW insert cost at population scale
// (path copy + root swap per key).
func BenchmarkInsert10e5(b *testing.B) {
	names, _ := population(100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := New[int]()
		for j, n := range names {
			tr.Insert(n, j)
		}
	}
}
