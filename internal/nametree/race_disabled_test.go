//go:build !race

package nametree

const raceEnabled = false
