//go:build race

package nametree

// raceEnabled reports whether the race detector is compiled in; the
// zero-allocation assertions are skipped under -race because the
// detector's instrumentation allocates on every synchronization op.
const raceEnabled = true
