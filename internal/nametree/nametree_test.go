package nametree

import (
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
)

// model is the naive reference: a plain map plus a sort on demand.
type model map[string]int

func (m model) longestPrefix(q string) (int, int, bool) {
	for n := len(q); n >= 0; n-- {
		if v, ok := m[q[:n]]; ok {
			return n, v, true
		}
	}
	return 0, 0, false
}

func (m model) sortedKeys() []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// genKey builds a hierarchical dot-separated key from a small vocabulary
// so generated keys share prefixes — the shape the radix tree exists to
// compress.
func genKey(r *rand.Rand) string {
	vocab := []string{"storage", "home", "pub", "mail", "shared", "archive", "s", "st", "stor", ""}
	depth := 1 + r.Intn(4)
	parts := make([]string, depth)
	for i := range parts {
		parts[i] = vocab[r.Intn(len(vocab))]
	}
	return strings.Join(parts, ".")
}

// TestPropertyVsModel drives the same randomized insert/delete/lookup
// stream through the tree and the naive sorted-map reference and
// requires exact agreement: membership, values, longest-prefix match,
// walk order, and the Len/KeyBytes counters.
func TestPropertyVsModel(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	tr := New[int]()
	ref := model{}
	for step := 0; step < 20000; step++ {
		key := genKey(r)
		switch r.Intn(10) {
		case 0, 1, 2, 3, 4: // insert
			replaced := tr.Insert(key, step)
			_, had := ref[key]
			if replaced != had {
				t.Fatalf("step %d: Insert(%q) replaced=%v, model had=%v", step, key, replaced, had)
			}
			ref[key] = step
		case 5, 6: // delete
			removed := tr.Delete(key)
			_, had := ref[key]
			if removed != had {
				t.Fatalf("step %d: Delete(%q) removed=%v, model had=%v", step, key, removed, had)
			}
			delete(ref, key)
		default: // lookup + LPM on a fresh query
			q := genKey(r)
			got, ok := tr.Get(q)
			want, wantOK := ref[q]
			if ok != wantOK || (ok && got != want) {
				t.Fatalf("step %d: Get(%q) = (%d,%v), model (%d,%v)", step, q, got, ok, want, wantOK)
			}
			n, v, ok := tr.LongestPrefix(q)
			wn, wv, wok := ref.longestPrefix(q)
			if n != wn || ok != wok || (ok && v != wv) {
				t.Fatalf("step %d: LongestPrefix(%q) = (%d,%d,%v), model (%d,%d,%v)", step, q, n, v, ok, wn, wv, wok)
			}
		}
		if tr.Len() != len(ref) {
			t.Fatalf("step %d: Len=%d, model %d", step, tr.Len(), len(ref))
		}
	}
	// Final structural agreement: walk order and key-byte accounting.
	var walked []string
	bytes := 0
	tr.Walk(func(k string, v int) bool {
		if want := ref[k]; v != want {
			t.Fatalf("Walk(%q) = %d, model %d", k, v, want)
		}
		walked = append(walked, k)
		bytes += len(k)
		return true
	})
	wantKeys := ref.sortedKeys()
	if len(walked) != len(wantKeys) {
		t.Fatalf("Walk visited %d keys, model has %d", len(walked), len(wantKeys))
	}
	for i, k := range walked {
		if k != wantKeys[i] {
			t.Fatalf("Walk order[%d] = %q, want %q", i, k, wantKeys[i])
		}
	}
	if tr.KeyBytes() != bytes {
		t.Fatalf("KeyBytes = %d, walked total %d", tr.KeyBytes(), bytes)
	}
}

// TestGetStepsAgreesWithGet pins that the instrumented descent is the
// same lookup, and that steps on hits are bounded by the key's node
// depth (≤ len(key)+1).
func TestGetStepsAgreesWithGet(t *testing.T) {
	tr := New[int]()
	keys := []string{"", "a", "ab", "abc", "abd", "b.c.d", "b.c", "zig"}
	for i, k := range keys {
		tr.Insert(k, i)
	}
	for _, q := range append(keys, "abcd", "zag", "b.", "c") {
		v1, ok1 := tr.Get(q)
		v2, ok2, steps := tr.GetSteps(q)
		if v1 != v2 || ok1 != ok2 {
			t.Fatalf("GetSteps(%q) = (%d,%v), Get = (%d,%v)", q, v2, ok2, v1, ok1)
		}
		if steps < 1 || steps > len(q)+1 {
			t.Fatalf("GetSteps(%q): implausible step count %d", q, steps)
		}
	}
}

// TestWalkEarlyStop pins that a false return halts the walk.
func TestWalkEarlyStop(t *testing.T) {
	tr := New[int]()
	for i, k := range []string{"a", "b", "c", "d"} {
		tr.Insert(k, i)
	}
	var seen []string
	tr.Walk(func(k string, _ int) bool {
		seen = append(seen, k)
		return len(seen) < 2
	})
	if len(seen) != 2 || seen[0] != "a" || seen[1] != "b" {
		t.Fatalf("early-stopped walk saw %v", seen)
	}
}

// TestConcurrentReaders hammers lock-free reads while a writer churns
// the tree; run under -race this is the COW publication safety test.
func TestConcurrentReaders(t *testing.T) {
	tr := New[int]()
	keys := make([]string, 256)
	for i := range keys {
		keys[i] = genKey(rand.New(rand.NewSource(int64(i))))
		tr.Insert(keys[i], i)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := keys[r.Intn(len(keys))]
				if v, ok := tr.Get(q); ok && (v < 0 || v >= 1<<20) {
					t.Errorf("Get(%q) observed torn value %d", q, v)
					return
				}
				tr.LongestPrefix(q)
			}
		}(int64(g))
	}
	for i := 0; i < 5000; i++ {
		k := keys[i%len(keys)]
		if i%3 == 0 {
			tr.Delete(k)
		} else {
			tr.Insert(k, i%(1<<20))
		}
	}
	close(stop)
	wg.Wait()
}

// TestReverseFirstMatchesSortedScan checks the O(1) inverse index gives
// exactly the answer a linear first-match scan over the sorted name
// table would, through adds and removes (including removing the min).
func TestReverseFirstMatchesSortedScan(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	rev := NewReverse[int]()
	ref := map[int]map[string]bool{}
	check := func() {
		t.Helper()
		for k, set := range ref {
			var names []string
			for n := range set {
				names = append(names, n)
			}
			sort.Strings(names)
			got, ok := rev.First(k)
			if len(names) == 0 {
				if ok {
					t.Fatalf("First(%d) = %q, want none", k, got)
				}
				continue
			}
			if !ok || got != names[0] {
				t.Fatalf("First(%d) = (%q,%v), want %q", k, got, ok, names[0])
			}
			if rev.Count(k) != len(names) {
				t.Fatalf("Count(%d) = %d, want %d", k, rev.Count(k), len(names))
			}
		}
	}
	for step := 0; step < 4000; step++ {
		k := r.Intn(5)
		name := genKey(r)
		if ref[k] == nil {
			ref[k] = map[string]bool{}
		}
		if r.Intn(3) == 0 {
			rev.Remove(k, name)
			delete(ref[k], name)
		} else {
			rev.Add(k, name)
			ref[k][name] = true
		}
		if step%100 == 0 {
			check()
		}
	}
	check()
	if rev.Count(99) != 0 {
		t.Fatal("Count of unknown key should be 0")
	}
	rev.Remove(99, "x") // no-op on unknown key
}

// TestEmptyKey pins that the empty string is a legal key (the root).
func TestEmptyKey(t *testing.T) {
	tr := New[string]()
	if _, ok := tr.Get(""); ok {
		t.Fatal("empty tree claims to hold the empty key")
	}
	tr.Insert("", "root")
	if v, ok := tr.Get(""); !ok || v != "root" {
		t.Fatalf("Get(\"\") = (%q,%v)", v, ok)
	}
	if n, v, ok := tr.LongestPrefix("anything"); !ok || n != 0 || v != "root" {
		t.Fatalf("LongestPrefix = (%d,%q,%v), want (0,root,true)", n, v, ok)
	}
	if !tr.Delete("") || tr.Len() != 0 {
		t.Fatal("Delete(\"\") failed")
	}
}

// TestReverseEdges exercises the non-min removal fast path, removal of
// unknown names/keys, and First on an unbound key.
func TestReverseEdges(t *testing.T) {
	r := NewReverse[int]()
	if _, ok := r.First(7); ok {
		t.Fatal("First on an unbound key")
	}
	r.Add(7, "b")
	r.Add(7, "a")
	r.Add(7, "c")
	r.Remove(7, "c") // non-min removal: no rescan
	if got, ok := r.First(7); !ok || got != "a" {
		t.Fatalf("First = %q, %v", got, ok)
	}
	r.Remove(7, "zzz") // absent name: no-op
	r.Remove(9, "a")   // absent key: no-op
	if got, ok := r.First(7); !ok || got != "a" {
		t.Fatalf("First after no-ops = %q, %v", got, ok)
	}
	r.Remove(7, "a") // min removal: rescan finds "b"
	if got, ok := r.First(7); !ok || got != "b" {
		t.Fatalf("First after min removal = %q, %v", got, ok)
	}
	r.Remove(7, "b")
	if _, ok := r.First(7); ok || r.Count(7) != 0 {
		t.Fatal("key not drained")
	}
}
