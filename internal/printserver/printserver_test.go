package printserver

import (
	"testing"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/proto"
	"repro/internal/vio"
	"repro/internal/vtime"
)

func startRig(t *testing.T) (*Server, *kernel.Process) {
	t.Helper()
	k := kernel.New(netsim.New(vtime.DefaultModel(), 1))
	host := k.NewHost("services")
	s, err := Start(host)
	if err != nil {
		t.Fatal(err)
	}
	clientHost := k.NewHost("ws")
	client, err := clientHost.NewProcess("client")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Destroy() })
	return s, client
}

func submit(t *testing.T, client *kernel.Process, s *Server, name string, data []byte) {
	t.Helper()
	req := &proto.Message{Op: proto.OpCreateInstance}
	proto.SetCSName(req, uint32(core.CtxDefault), name)
	proto.SetOpenMode(req, proto.ModeWrite|proto.ModeCreate)
	reply, err := client.Send(req, s.PID())
	if err != nil {
		t.Fatal(err)
	}
	if err := proto.ReplyError(reply.Op); err != nil {
		t.Fatal(err)
	}
	f := vio.NewFile(client, s.PID(), proto.GetInstanceInfo(reply))
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSubmitQueuesOnRelease(t *testing.T) {
	s, client := startRig(t)
	submit(t, client, s, "a.ps", []byte("A"))
	if s.QueueLength() != 1 {
		t.Fatalf("queue = %d", s.QueueLength())
	}
	submit(t, client, s, "b.ps", []byte("B"))
	if s.QueueLength() != 2 {
		t.Fatalf("queue = %d", s.QueueLength())
	}
}

func TestFIFOOrderAndStates(t *testing.T) {
	s, client := startRig(t)
	submit(t, client, s, "first.ps", []byte("1"))
	submit(t, client, s, "second.ps", []byte("2"))

	q := &proto.Message{Op: proto.OpQueryObject}
	proto.SetCSName(q, uint32(core.CtxDefault), "first.ps")
	reply, err := client.Send(q, s.PID())
	if err != nil || reply.Op != proto.ReplyOK {
		t.Fatalf("query = %v, %v", reply, err)
	}
	d, _, err := proto.DecodeDescriptor(reply.Segment)
	if err != nil {
		t.Fatal(err)
	}
	if d.TypeSpecific[0] != 1 || jobState(d.TypeSpecific[1]) != statePrinting {
		t.Fatalf("head job descriptor = %+v", d)
	}

	if name := s.AdvanceQueue(); name != "first.ps" {
		t.Fatalf("printed %q", name)
	}
	if name := s.AdvanceQueue(); name != "second.ps" {
		t.Fatalf("printed %q", name)
	}
	if s.AdvanceQueue() != "" {
		t.Fatal("empty queue should return empty name")
	}
	printed := s.Printed()
	if len(printed) != 2 || string(printed[0]) != "1" || string(printed[1]) != "2" {
		t.Fatalf("printed = %q", printed)
	}
}

func TestPrintedNameUnboundAfterCompletion(t *testing.T) {
	s, client := startRig(t)
	submit(t, client, s, "done.ps", []byte("x"))
	s.AdvanceQueue()
	q := &proto.Message{Op: proto.OpQueryObject}
	proto.SetCSName(q, uint32(core.CtxDefault), "done.ps")
	reply, err := client.Send(q, s.PID())
	if err != nil || reply.Op != proto.ReplyNotFound {
		t.Fatalf("query after print = %v, %v", reply, err)
	}
}

func TestCancelRemovesFromQueue(t *testing.T) {
	s, client := startRig(t)
	submit(t, client, s, "a.ps", []byte("A"))
	submit(t, client, s, "b.ps", []byte("B"))
	rm := &proto.Message{Op: proto.OpRemoveObject}
	proto.SetCSName(rm, uint32(core.CtxDefault), "a.ps")
	reply, err := client.Send(rm, s.PID())
	if err != nil || reply.Op != proto.ReplyOK {
		t.Fatalf("cancel = %v, %v", reply, err)
	}
	if s.QueueLength() != 1 {
		t.Fatalf("queue = %d", s.QueueLength())
	}
	if name := s.AdvanceQueue(); name != "b.ps" {
		t.Fatalf("printed %q", name)
	}
}

func TestWriteAfterQueueingRejected(t *testing.T) {
	s, client := startRig(t)
	// Open, write, close (queues the job), then reopen and try to write.
	submit(t, client, s, "late.ps", []byte("x"))
	req := &proto.Message{Op: proto.OpCreateInstance}
	proto.SetCSName(req, uint32(core.CtxDefault), "late.ps")
	proto.SetOpenMode(req, proto.ModeRead)
	reply, err := client.Send(req, s.PID())
	if err != nil || reply.Op != proto.ReplyOK {
		t.Fatalf("reopen = %v, %v", reply, err)
	}
	f := vio.NewFile(client, s.PID(), proto.GetInstanceInfo(reply))
	if _, err := f.Write([]byte("more")); err == nil {
		t.Fatal("write to a queued job must fail")
	}
	// Reading the queued job's data still works.
	if _, err := f.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	got, err := f.ReadAll()
	if err != nil || string(got) != "x" {
		t.Fatalf("read %q, %v", got, err)
	}
}

func TestDuplicateJobName(t *testing.T) {
	s, client := startRig(t)
	submit(t, client, s, "dup.ps", []byte("x"))
	req := &proto.Message{Op: proto.OpCreateInstance}
	proto.SetCSName(req, uint32(core.CtxDefault), "dup.ps")
	proto.SetOpenMode(req, proto.ModeWrite|proto.ModeCreate)
	// Existing name: reopens for read, not a new job.
	reply, err := client.Send(req, s.PID())
	if err != nil || reply.Op != proto.ReplyOK {
		t.Fatalf("reply = %v, %v", reply, err)
	}
	if s.QueueLength() != 1 {
		t.Fatalf("queue = %d", s.QueueLength())
	}
}

func TestQueueDirectoryPositions(t *testing.T) {
	s, client := startRig(t)
	for _, n := range []string{"a.ps", "b.ps", "c.ps"} {
		submit(t, client, s, n, []byte(n))
	}
	req := &proto.Message{Op: proto.OpCreateInstance}
	proto.SetCSName(req, uint32(core.CtxDefault), "")
	proto.SetOpenMode(req, proto.ModeRead|proto.ModeDirectory)
	reply, err := client.Send(req, s.PID())
	if err != nil || reply.Op != proto.ReplyOK {
		t.Fatalf("open dir = %v, %v", reply, err)
	}
	f := vio.NewFile(client, s.PID(), proto.GetInstanceInfo(reply))
	raw, err := f.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	records, err := proto.DecodeDescriptors(raw)
	if err != nil || len(records) != 3 {
		t.Fatalf("records = %v, %v", records, err)
	}
	for i, r := range records {
		if int(r.TypeSpecific[0]) != i+1 {
			t.Fatalf("record %d position = %d", i, r.TypeSpecific[0])
		}
	}
}

func TestAdvanceChargesPrintTime(t *testing.T) {
	s, client := startRig(t)
	submit(t, client, s, "big.ps", make([]byte, 5*vio.DefaultBlockSize))
	before := s.proc.Now()
	s.AdvanceQueue()
	if s.proc.Now()-before < 5*s.pageTime {
		t.Fatal("printing must charge per-page time")
	}
}
