package printserver

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/proto"
	"repro/internal/trace"
	"repro/internal/trace/tracetest"
	"repro/internal/vio"
)

// TestTraceInvariantsPrintServer submits print jobs in a traced domain
// and checks the trace invariants and the team's handoff spans.
func TestTraceInvariantsPrintServer(t *testing.T) {
	d := tracetest.New()
	s, err := Start(d.K.NewHost("services"), core.WithTeam(2))
	if err != nil {
		t.Fatal(err)
	}
	proc, err := d.K.NewHost("ws").NewProcess("client")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(proc.Destroy)

	const jobs = 2
	for j := 0; j < jobs; j++ {
		req := &proto.Message{Op: proto.OpCreateInstance}
		proto.SetCSName(req, uint32(core.CtxDefault), fmt.Sprintf("traced-%d.ps", j))
		proto.SetOpenMode(req, proto.ModeWrite|proto.ModeCreate)
		reply, err := proc.Send(req, s.PID())
		if err != nil || proto.ReplyError(reply.Op) != nil {
			t.Fatalf("job %d open: %v, %v", j, reply, err)
		}
		f := vio.NewFile(proc, s.PID(), proto.GetInstanceInfo(reply))
		if _, err := f.Write([]byte("%!PS")); err != nil {
			t.Fatalf("job %d write: %v", j, err)
		}
		if err := f.Close(); err != nil {
			t.Fatalf("job %d close: %v", j, err)
		}
	}
	if got := s.QueueLength(); got != jobs {
		t.Fatalf("queue = %d, want %d", got, jobs)
	}

	spans := d.Check(t)
	tracetest.Require(t, spans, trace.KindSend, jobs*3)
	tracetest.Require(t, spans, trace.KindServe, jobs*3)
	tracetest.Require(t, spans, trace.KindReply, jobs*3)
	tracetest.Require(t, spans, trace.KindHandoff, jobs)
}
