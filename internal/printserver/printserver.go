// Package printserver implements the V-System laser printer server (§6):
// print jobs are created by opening a named job in the printer's context,
// writing the data, and releasing the instance, which queues the job. The
// job queue is the server's context: the context directory lists the jobs
// with their queue positions, and removing a job's name cancels it —
// naming and object management are one mechanism (§2.3).
package printserver

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/proto"
	"repro/internal/vio"
)

// jobState tracks a job through the queue.
type jobState uint8

const (
	stateSpooling jobState = iota + 1
	stateQueued
	statePrinting
	stateDone
)

func (st jobState) String() string {
	switch st {
	case stateSpooling:
		return "spooling"
	case stateQueued:
		return "queued"
	case statePrinting:
		return "printing"
	case stateDone:
		return "done"
	default:
		return "unknown"
	}
}

// job is one print job.
type job struct {
	id    uint32
	name  string
	owner string
	data  []byte
	state jobState
}

// Server is the printer server.
type Server struct {
	srv   *core.Server
	proc  *kernel.Process
	store *core.MapStore
	reg   *vio.Registry

	mu      sync.Mutex
	jobs    map[uint32]*job
	queue   []uint32 // queued job ids in submission order
	next    uint32
	printed [][]byte // completed output, oldest first
	// pagesPerJobTime is the simulated print speed applied when the
	// queue advances.
	pageTime time.Duration
}

// Start spawns a printer server on host. Options (e.g. core.WithTeam)
// configure the serving runtime.
func Start(host *kernel.Host, opts ...core.Option) (*Server, error) {
	proc, err := host.NewProcess("print-server")
	if err != nil {
		return nil, err
	}
	s := &Server{
		proc:     proc,
		store:    core.NewMapStore(),
		reg:      vio.NewRegistry(),
		jobs:     make(map[uint32]*job),
		pageTime: 2 * time.Second,
	}
	s.srv = core.NewServer(proc, s.store, s, opts...)
	if err := s.srv.Start(); err != nil {
		return nil, err
	}
	if err := proc.SetPid(kernel.ServicePrinter, proc.PID(), kernel.ScopeBoth); err != nil {
		return nil, err
	}
	return s, nil
}

// PID returns the server's process identifier.
func (s *Server) PID() kernel.PID { return s.proc.PID() }

// Err reports why the server stopped serving (see core.Server.Err).
func (s *Server) Err() error { return s.srv.Err() }

// RootPair returns the server's single context (the job queue).
func (s *Server) RootPair() core.ContextPair { return s.srv.Pair(core.CtxDefault) }

// QueueLength returns the number of jobs not yet done.
func (s *Server) QueueLength() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// Printed returns the payloads printed so far.
func (s *Server) Printed() [][]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([][]byte, len(s.printed))
	for i, p := range s.printed {
		out[i] = append([]byte(nil), p...)
	}
	return out
}

// AdvanceQueue simulates the printer finishing the job at the head of the
// queue, charging print time to the server clock. It returns the name of
// the finished job, or "" if the queue is empty.
func (s *Server) AdvanceQueue() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.queue) == 0 {
		return ""
	}
	id := s.queue[0]
	s.queue = s.queue[1:]
	j := s.jobs[id]
	if j == nil {
		return ""
	}
	pages := (len(j.data) + vio.DefaultBlockSize - 1) / vio.DefaultBlockSize
	if pages == 0 {
		pages = 1
	}
	s.proc.ChargeCompute(time.Duration(pages) * s.pageTime)
	j.state = stateDone
	s.printed = append(s.printed, j.data)
	delete(s.jobs, id)
	_ = s.store.Unbind(core.CtxDefault, j.name)
	if len(s.queue) > 0 {
		if head := s.jobs[s.queue[0]]; head != nil {
			head.state = statePrinting
		}
	}
	return j.name
}

func (s *Server) describe(j *job, position int) proto.Descriptor {
	return proto.Descriptor{
		Tag:          proto.TagPrintJob,
		ObjectID:     j.id,
		Name:         j.name,
		Owner:        j.owner,
		Size:         uint32(len(j.data)),
		Perms:        proto.PermRead | proto.PermWrite,
		TypeSpecific: [2]uint32{uint32(position), uint32(j.state)},
	}
}

// position returns a job's 1-based queue position, or 0 if not queued.
func (s *Server) position(id uint32) int {
	for i, q := range s.queue {
		if q == id {
			return i + 1
		}
	}
	return 0
}

// HandleNamed implements core.Handler.
func (s *Server) HandleNamed(req *core.Request, res *core.Resolution) *proto.Message {
	switch req.Msg.Op {
	case proto.OpCreateInstance:
		mode := proto.OpenMode(req.Msg)
		if mode&proto.ModeDirectory != 0 {
			if _, err := res.ContextOf(); err != nil {
				return core.ErrorReplyMsg(err)
			}
			pattern, err := proto.DirPattern(req.Msg)
			if err != nil {
				return core.ErrorReplyMsg(err)
			}
			return s.openQueueDirectory(req.Proc(), res.Name, pattern)
		}
		if res.Entry == nil && mode&proto.ModeCreate != 0 {
			return s.submit(req, res)
		}
		if res.Entry == nil || res.Entry.Object == nil {
			return core.ErrorReplyMsg(proto.ErrNotFound)
		}
		// Re-opening an existing job gives read access to its data.
		return s.openJob(res.Entry.Object.ID, res.Last, proto.ModeRead)

	case proto.OpQueryObject:
		if res.Entry == nil || res.Entry.Object == nil {
			return core.ErrorReplyMsg(proto.ErrNotFound)
		}
		s.mu.Lock()
		j := s.jobs[res.Entry.Object.ID]
		var d proto.Descriptor
		if j != nil {
			d = s.describe(j, s.position(j.id))
		}
		s.mu.Unlock()
		if j == nil {
			return core.ErrorReplyMsg(proto.ErrNotFound)
		}
		req.Proc().ChargeCompute(req.Proc().Kernel().Model().DescriptorFabricateCost)
		reply := core.OkReply()
		reply.Segment = d.AppendEncoded(nil)
		return reply

	case proto.OpRemoveObject:
		// Cancelling a job is deleting its name from the queue context.
		if res.Entry == nil || res.Entry.Object == nil {
			return core.ErrorReplyMsg(proto.ErrNotFound)
		}
		s.mu.Lock()
		id := res.Entry.Object.ID
		delete(s.jobs, id)
		for i, q := range s.queue {
			if q == id {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				break
			}
		}
		s.mu.Unlock()
		if err := s.store.Unbind(core.CtxDefault, res.Last); err != nil {
			return core.ErrorReplyMsg(err)
		}
		return core.OkReply()

	default:
		return core.ErrorReplyMsg(proto.ErrIllegalRequest)
	}
}

// HandleOp implements core.Handler.
func (s *Server) HandleOp(req *core.Request) *proto.Message {
	if reply := s.reg.HandleOp(req.Proc(), req.Msg); reply != nil {
		return reply
	}
	return core.ErrorReplyMsg(proto.ErrIllegalRequest)
}

// submit creates a job in spooling state; releasing the instance queues
// it.
func (s *Server) submit(req *core.Request, res *core.Resolution) *proto.Message {
	s.mu.Lock()
	s.next++
	j := &job{id: s.next, name: res.Last, state: stateSpooling}
	s.jobs[j.id] = j
	s.mu.Unlock()
	if err := s.store.Bind(core.CtxDefault, j.name, core.ObjectEntry(proto.TagPrintJob, j.id)); err != nil {
		s.mu.Lock()
		delete(s.jobs, j.id)
		s.mu.Unlock()
		return core.ErrorReplyMsg(err)
	}
	return s.openJob(j.id, j.name, proto.ModeWrite)
}

func (s *Server) openJob(id uint32, name string, mode uint32) *proto.Message {
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		return core.ErrorReplyMsg(proto.ErrNotFound)
	}
	iid, err := s.reg.Open(&jobInstance{s: s, j: j, mode: mode}, name)
	if err != nil {
		return core.ErrorReplyMsg(err)
	}
	inst, _ := s.reg.Get(iid)
	info := inst.Info()
	info.ID = iid
	reply := core.OkReply()
	proto.SetInstanceInfo(reply, info)
	proto.SetInstanceOwner(reply, uint32(s.proc.PID()))
	return reply
}

func (s *Server) openQueueDirectory(p *kernel.Process, name, pattern string) *proto.Message {
	s.mu.Lock()
	records := make([]proto.Descriptor, 0, len(s.queue))
	for _, id := range s.queue {
		if j := s.jobs[id]; j != nil {
			records = append(records, s.describe(j, s.position(id)))
		}
	}
	s.mu.Unlock()
	records = core.FilterRecords(records, pattern)
	model := p.Kernel().Model()
	p.ChargeCompute(time.Duration(len(records)) * model.DescriptorFabricateCost)
	iid, err := s.reg.Open(vio.NewDirectoryInstance(records, nil), name)
	if err != nil {
		return core.ErrorReplyMsg(err)
	}
	inst, _ := s.reg.Get(iid)
	info := inst.Info()
	info.ID = iid
	reply := core.OkReply()
	proto.SetInstanceInfo(reply, info)
	proto.SetInstanceOwner(reply, uint32(s.proc.PID()))
	return reply
}

// jobInstance spools data into a job; Release queues it for printing.
type jobInstance struct {
	s    *Server
	j    *job
	mode uint32
}

func (ji *jobInstance) Info() proto.InstanceInfo {
	ji.s.mu.Lock()
	defer ji.s.mu.Unlock()
	return proto.InstanceInfo{
		SizeBytes: uint32(len(ji.j.data)),
		BlockSize: vio.DefaultBlockSize,
		Flags:     ji.mode,
	}
}

func (ji *jobInstance) ReadAt(_ *kernel.Process, off int64, buf []byte) (int, error) {
	ji.s.mu.Lock()
	defer ji.s.mu.Unlock()
	if off >= int64(len(ji.j.data)) {
		return 0, proto.ErrEndOfFile
	}
	return copy(buf, ji.j.data[off:]), nil
}

func (ji *jobInstance) WriteAt(_ *kernel.Process, off int64, data []byte) (int, error) {
	ji.s.mu.Lock()
	defer ji.s.mu.Unlock()
	if ji.j.state != stateSpooling {
		return 0, fmt.Errorf("%w: job already queued", proto.ErrNoPermission)
	}
	if need := int(off) + len(data); need > len(ji.j.data) {
		grown := make([]byte, need)
		copy(grown, ji.j.data)
		ji.j.data = grown
	}
	return copy(ji.j.data[off:], data), nil
}

// Release moves a spooling job into the print queue.
func (ji *jobInstance) Release() {
	ji.s.mu.Lock()
	defer ji.s.mu.Unlock()
	if ji.j.state == stateSpooling {
		ji.j.state = stateQueued
		ji.s.queue = append(ji.s.queue, ji.j.id)
		if len(ji.s.queue) == 1 {
			ji.j.state = statePrinting
		}
	}
}

var (
	_ vio.Instance = (*jobInstance)(nil)
	_ core.Handler = (*Server)(nil)
)
