package printserver

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/proto"
	"repro/internal/vio"
	"repro/internal/vtime"
)

// TestTeamStressPrintServer submits jobs from many concurrent clients to
// one print-server team; with -race this exercises the queue locking.
func TestTeamStressPrintServer(t *testing.T) {
	k := kernel.New(netsim.New(vtime.DefaultModel(), 1))
	s, err := Start(k.NewHost("services"), core.WithTeam(3))
	if err != nil {
		t.Fatal(err)
	}

	const clients, jobs = 5, 4
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		proc, err := k.NewHost(fmt.Sprintf("ws%d", i)).NewProcess("client")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(proc.Destroy)
		wg.Add(1)
		go func(i int, proc *kernel.Process) {
			defer wg.Done()
			for j := 0; j < jobs; j++ {
				req := &proto.Message{Op: proto.OpCreateInstance}
				proto.SetCSName(req, uint32(core.CtxDefault), fmt.Sprintf("job-%d-%d.ps", i, j))
				proto.SetOpenMode(req, proto.ModeWrite|proto.ModeCreate)
				reply, err := proc.Send(req, s.PID())
				if err != nil || proto.ReplyError(reply.Op) != nil {
					errs <- fmt.Errorf("client %d job %d open: %v, %v", i, j, reply, err)
					return
				}
				f := vio.NewFile(proc, s.PID(), proto.GetInstanceInfo(reply))
				if _, err := f.Write([]byte("%!PS")); err != nil {
					errs <- fmt.Errorf("client %d job %d write: %w", i, j, err)
					return
				}
				if err := f.Close(); err != nil {
					errs <- fmt.Errorf("client %d job %d close: %w", i, j, err)
					return
				}
			}
		}(i, proc)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := s.QueueLength(); got != clients*jobs {
		t.Fatalf("queue = %d, want %d", got, clients*jobs)
	}
}
