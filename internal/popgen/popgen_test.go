package popgen

import (
	"strings"
	"testing"
	"time"
)

// TestZipfDeterministic pins the workload generator's determinism
// contract: the same (n, skew, seed) triple yields the identical
// population, rank draws and arrival schedule on every run — including
// under -race, where the make check gate runs it.
func TestZipfDeterministic(t *testing.T) {
	a := NewPopulation(5000, 0.99, 7)
	b := NewPopulation(5000, 0.99, 7)
	for i := range a.Names {
		if a.Names[i] != b.Names[i] {
			t.Fatalf("name %d differs: %q vs %q", i, a.Names[i], b.Names[i])
		}
	}
	sa, sb := a.Sampler(3), b.Sampler(3)
	for i := 0; i < 10000; i++ {
		ra, rb := sa.NextRank(), sb.NextRank()
		if ra != rb {
			t.Fatalf("draw %d differs: %d vs %d", i, ra, rb)
		}
		if ra < 0 || ra >= len(a.Names) {
			t.Fatalf("draw %d out of range: %d", i, ra)
		}
	}
	aa := Arrivals(1000, time.Millisecond, 2*time.Millisecond, 9)
	ab := Arrivals(1000, time.Millisecond, 2*time.Millisecond, 9)
	for i := range aa {
		if aa[i] != ab[i] {
			t.Fatalf("arrival %d differs: %v vs %v", i, aa[i], ab[i])
		}
	}
}

// TestPopulationShape checks the structural invariants every consumer
// relies on: unique legal names, plausible depth spread, prefix
// sharing.
func TestPopulationShape(t *testing.T) {
	p := NewPopulation(20000, 0.99, 1)
	seen := make(map[string]bool, len(p.Names))
	depths := make(map[int]int)
	for _, n := range p.Names {
		if n == "" || strings.ContainsAny(n, "[]/") {
			t.Fatalf("illegal prefix name %q", n)
		}
		if seen[n] {
			t.Fatalf("duplicate name %q", n)
		}
		seen[n] = true
		depths[strings.Count(n, ".")+1]++
	}
	// The depth distribution must cover the configured 1..6 range.
	for d := 1; d <= len(depthWeights); d++ {
		if depths[d] == 0 {
			t.Fatalf("no names at depth %d: %v", d, depths)
		}
	}
}

// TestZipfSkewConcentrates checks the sampler actually follows the
// skew: with s=1.2 the head ranks take far more draws than under
// uniform popularity, and with s=0 draws are roughly uniform.
func TestZipfSkewConcentrates(t *testing.T) {
	const n, draws = 10000, 200000
	headShare := func(skew float64) float64 {
		p := NewPopulation(n, skew, 2)
		s := p.Sampler(1)
		head := 0
		for i := 0; i < draws; i++ {
			if s.NextRank() < n/100 { // top 1% of ranks
				head++
			}
		}
		return float64(head) / draws
	}
	skewed := headShare(1.2)
	uniform := headShare(0)
	if skewed < 0.5 {
		t.Fatalf("skew 1.2: top-1%% share %.3f, want > 0.5", skewed)
	}
	if uniform < 0.005 || uniform > 0.02 {
		t.Fatalf("skew 0: top-1%% share %.3f, want ~0.01", uniform)
	}
}

// TestArrivalsOpenLoop checks schedule invariants: strictly increasing,
// starting after the origin, with the mean gap near the configured one.
func TestArrivalsOpenLoop(t *testing.T) {
	const count = 50000
	mean := 2 * time.Millisecond
	start := 10 * time.Millisecond
	arr := Arrivals(count, start, mean, 4)
	prev := start
	for i, a := range arr {
		if a <= prev {
			t.Fatalf("arrival %d not increasing: %v after %v", i, a, prev)
		}
		prev = a
	}
	got := (arr[count-1] - start) / count
	if got < mean*9/10 || got > mean*11/10 {
		t.Fatalf("mean inter-arrival %v, want ~%v", got, mean)
	}
}

// TestSamplerStreamsIndependent checks distinct client streams draw
// different sequences (so a sharded run is not N copies of one client).
func TestSamplerStreamsIndependent(t *testing.T) {
	p := NewPopulation(1000, 0.99, 5)
	s1, s2 := p.Sampler(1), p.Sampler(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if s1.NextRank() == s2.NextRank() {
			same++
		}
	}
	// Zipf concentrates draws, so collisions happen — but identical
	// streams would collide 1000 times.
	if same > 900 {
		t.Fatalf("streams 1 and 2 nearly identical: %d/1000 collisions", same)
	}
}

// TestSamplerNext checks Next returns the name at the drawn rank.
func TestSamplerNext(t *testing.T) {
	p := NewPopulation(100, 0.99, 3)
	byName := make(map[string]bool, len(p.Names))
	for _, n := range p.Names {
		byName[n] = true
	}
	s := p.Sampler(1)
	for i := 0; i < 100; i++ {
		if !byName[s.Next()] {
			t.Fatal("Next returned a name outside the population")
		}
	}
}

// TestPanics pins the constructor contracts.
func TestPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("NewPopulation(0)", func() { NewPopulation(0, 1, 1) })
	mustPanic("Arrivals mean<=0", func() { Arrivals(1, 0, 0, 1) })
}
