// Package popgen generates deterministic population-scale name
// workloads (PROTOCOL.md §14): Zipf(s, N)-distributed popularity over
// 10³–10⁶ context-prefix names with a realistic prefix-depth
// distribution, and open-loop arrival schedules in virtual time.
//
// The paper's evaluation drove a handful of workstation clients in a
// closed loop against a 2.6 KB prefix table (§6); ROADMAP items 2–3 ask
// what resolution looks like when the table holds a user population —
// where popularity is heavy-tailed (a few names take most of the
// traffic, the tail is enormous) and load is *offered*, not throttled
// by the clients' own completions. Everything here is deterministic
// from explicit seeds and pure integer/IEEE-exact arithmetic, so two
// builds of the same workload — sequential and sharded-engine, today's
// run and the golden — draw byte-identical populations and schedules.
package popgen

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Rand is a tiny deterministic PRNG (splitmix64): self-contained so the
// workload's draw sequence can never shift under a Go release's
// math/rand changes, and cheap enough to give every client its own
// stream (draws are independent of lane interleaving).
type Rand struct{ state uint64 }

// NewRand returns a PRNG stream for the given seed.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n).
func (r *Rand) Intn(n int) int {
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits. The
// conversion and the comparisons it feeds are exact IEEE operations, so
// draws are platform-independent.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// segments is the vocabulary populations draw path segments from:
// shared segments are what give the population real prefix structure
// (and the radix index something to compress).
var segments = [...]string{
	"storage", "home", "pub", "mail", "shared", "archive",
	"proj", "user", "src", "doc", "media", "scratch",
	"eng", "ops", "lab", "www",
}

// depthWeights is the prefix-depth distribution: most names sit 2–4
// segments deep, a few are flat, a thin tail goes to 6 — the directory
// depths file-system traces report rather than a uniform draw.
var depthWeights = [...]int{10, 25, 30, 20, 10, 5} // depth 1..6, percent

// Population is a deterministic Zipf-ranked name population:
// Names[0] is the most popular name, and rank k is drawn with
// probability proportional to 1/(k+1)^Skew.
type Population struct {
	Names []string
	Skew  float64
	// cum[k] is the cumulative unnormalized Zipf weight through rank k;
	// sampling is one uniform draw and a binary search.
	cum []float64
}

// NewPopulation generates n names with the given Zipf skew. seed
// selects the name-shape stream; the same (n, skew, seed) triple always
// yields the identical population. Skew 0 is uniform popularity; skew
// may be below 1 (unlike math/rand's Zipf). Names contain only
// [a-z0-9.] — always legal prefix names.
func NewPopulation(n int, skew float64, seed uint64) *Population {
	if n <= 0 {
		panic(fmt.Sprintf("popgen: population size %d", n))
	}
	r := NewRand(seed)
	names := make([]string, n)
	for i := range names {
		depth := pickDepth(r)
		// Shared vocabulary segments plus a unique final segment: names
		// collide on prefixes (radix compression is real) but never on
		// the full key.
		var b []byte
		for d := 0; d < depth-1; d++ {
			b = append(b, segments[r.Intn(len(segments))]...)
			b = append(b, '.')
		}
		b = append(b, 'n')
		b = appendInt(b, i)
		names[i] = string(b)
	}
	cum := make([]float64, n)
	total := 0.0
	for k := 0; k < n; k++ {
		total += math.Pow(float64(k+1), -skew)
		cum[k] = total
	}
	return &Population{Names: names, Skew: skew, cum: cum}
}

// pickDepth draws a prefix depth from depthWeights.
func pickDepth(r *Rand) int {
	roll := r.Intn(100)
	acc := 0
	for d, w := range depthWeights {
		acc += w
		if roll < acc {
			return d + 1
		}
	}
	return len(depthWeights)
}

// appendInt appends the decimal digits of i (i >= 0) without fmt.
func appendInt(b []byte, i int) []byte {
	if i == 0 {
		return append(b, '0')
	}
	var tmp [20]byte
	pos := len(tmp)
	for i > 0 {
		pos--
		tmp[pos] = byte('0' + i%10)
		i /= 10
	}
	return append(b, tmp[pos:]...)
}

// Sampler draws ranks from the population's Zipf distribution on its
// own PRNG stream. Distinct streams (per client) make the draw sequence
// independent of how clients interleave.
type Sampler struct {
	pop *Population
	r   *Rand
}

// Sampler returns a sampler on stream `stream` of this population.
func (p *Population) Sampler(stream uint64) *Sampler {
	// Offset the stream so stream 0 does not collide with the
	// name-shape stream of NewPopulation(seed 0).
	return &Sampler{pop: p, r: NewRand(stream*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d)}
}

// NextRank draws the next rank: u uniform in [0, total), binary search
// over the cumulative weights.
func (s *Sampler) NextRank() int {
	u := s.r.Float64() * s.pop.cum[len(s.pop.cum)-1]
	return sort.SearchFloat64s(s.pop.cum, u)
}

// Next draws the next name.
func (s *Sampler) Next() string {
	return s.pop.Names[s.NextRank()]
}

// Arrivals builds an open-loop arrival schedule: count absolute virtual
// arrival times starting at start, with mean inter-arrival gap `mean`.
// Gaps are uniformly jittered around the mean (gap = mean/2 + U[0,
// mean)) in pure integer arithmetic — deterministic across platforms,
// which an exponential draw through math.Log would not guarantee — and
// the schedule is strictly non-decreasing, as WorkloadClient.Arrive
// requires.
func Arrivals(count int, start, mean time.Duration, stream uint64) []time.Duration {
	if mean <= 0 {
		panic("popgen: non-positive mean inter-arrival")
	}
	r := NewRand(stream*0x6c62272e07bb0142 + 0x100000001b3)
	out := make([]time.Duration, count)
	t := start
	for i := range out {
		t += mean/2 + time.Duration(r.Uint64()%uint64(mean))
		out[i] = t
	}
	return out
}
