package fileserver

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/proto"
	"repro/internal/replica"
	"repro/internal/vtime"
)

// seedVolume builds a small but representative name space: nested
// directories, two files, a well-known binding, and a remote link.
func seedVolume(t *testing.T, fs *FileServer) {
	t.Helper()
	if _, err := fs.MkdirAll("/users/mann/notes", "mann"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.MkdirAll("/bin", "system"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/users/mann/notes/todo.txt", "mann", []byte("ship it")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/bin/hello", "system", []byte("hello image")); err != nil {
		t.Fatal(err)
	}
	if err := fs.SetWellKnown(core.CtxStdPrograms, "/bin"); err != nil {
		t.Fatal(err)
	}
	if err := fs.AddLink("/users/mann", "shared", core.ContextPair{Server: 42, Ctx: 7}); err != nil {
		t.Fatal(err)
	}
}

// TestVolumeSnapshotRoundTrip pins the snapshot codec: restoring an
// encoded volume reproduces the name space exactly, and the canonical
// encoding makes the round trip byte-stable.
func TestVolumeSnapshotRoundTrip(t *testing.T) {
	k := kernel.New(netsim.New(vtime.DefaultModel(), 1))
	src, err := Start(k.NewHost("src"), "src")
	if err != nil {
		t.Fatal(err)
	}
	seedVolume(t, src)
	img := src.vol.encode()

	dst, err := Start(k.NewHost("dst"), "dst")
	if err != nil {
		t.Fatal(err)
	}
	// Pre-populate the destination with divergent state the restore must
	// wipe out.
	if err := dst.WriteFile("/stale/junk.txt", "nobody", []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := dst.restoreVolume(img); err != nil {
		t.Fatal(err)
	}
	if got := dst.vol.encode(); !bytes.Equal(got, img) {
		t.Fatalf("restored volume re-encodes differently (%d vs %d bytes)", len(got), len(img))
	}
	d, err := dst.Describe("/users/mann/notes/todo.txt")
	if err != nil {
		t.Fatal(err)
	}
	if d.Size != uint32(len("ship it")) {
		t.Fatalf("restored file size = %d", d.Size)
	}
	if _, err := dst.Describe("/stale/junk.txt"); err == nil {
		t.Fatalf("pre-restore state survived the restore")
	}
}

// TestVolumeSnapshotCorrupt: every truncation of a valid image must be
// rejected, never half-applied.
func TestVolumeSnapshotCorrupt(t *testing.T) {
	k := kernel.New(netsim.New(vtime.DefaultModel(), 1))
	fs, err := Start(k.NewHost("fs"), "fs")
	if err != nil {
		t.Fatal(err)
	}
	seedVolume(t, fs)
	img := fs.vol.encode()
	for _, cut := range []int{0, 1, len(img) / 2, len(img) - 1} {
		if _, _, _, err := decodeVolume(img[:cut]); err == nil {
			t.Fatalf("decodeVolume accepted a %d-byte truncation", cut)
		}
	}
	if _, _, _, err := decodeVolume(append(append([]byte(nil), img...), 0)); err == nil {
		t.Fatalf("decodeVolume accepted trailing garbage")
	}
}

// replicatedFS is one group member: a local file server fronted by a
// replica running its ReplicaService.
type replicatedFS struct {
	fs  *FileServer
	rep *replica.Replica
}

// startReplicatedFS boots an n-member file-server replication group plus
// a client process, mirroring the rig's topology at package scale.
func startReplicatedFS(t *testing.T, n int) (*replica.Group, []replicatedFS, *kernel.Process) {
	t.Helper()
	k := kernel.New(netsim.New(vtime.DefaultModel(), 1))
	g, err := replica.NewGroup(k.NewHost("mon"), replica.Config{Name: "fs", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	members := make([]replicatedFS, n)
	for i := 0; i < n; i++ {
		host := k.NewHost(string(rune('a' + i)))
		fs, err := Start(host, "fs"+string(rune('a'+i)))
		if err != nil {
			t.Fatal(err)
		}
		svc := NewReplicaService(fs)
		rep, err := replica.Start(host, "front", func(p *kernel.Process) replica.Service { return svc })
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Add(host.Name(), rep); err != nil {
			t.Fatal(err)
		}
		members[i] = replicatedFS{fs: fs, rep: rep}
	}
	if err := g.Bootstrap(0); err != nil {
		t.Fatal(err)
	}
	client, err := k.NewHost("ws").NewProcess("client")
	if err != nil {
		t.Fatal(err)
	}
	return g, members, client
}

// proposeOK proposes a boot command and requires an OK reply.
func proposeOK(t *testing.T, g *replica.Group, cmd []byte) *proto.Message {
	t.Helper()
	rep, err := g.Propose(cmd)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Op != proto.ReplyOK {
		t.Fatalf("propose reply %v", rep.Op)
	}
	return rep
}

// TestReplicatedFileServer drives the full front: boot seeding through
// the log, client mutations on leader and follower, context-map
// proxying, and snapshot equality across members.
func TestReplicatedFileServer(t *testing.T) {
	g, members, client := startReplicatedFS(t, 3)

	// Boot-seed through the log: every command kind once.
	rep := proposeOK(t, g, CmdMkdirAll("/users/mann/notes", "mann"))
	if rep.F[2] == 0 {
		t.Fatalf("CmdMkdirAll reply carries no context id")
	}
	proposeOK(t, g, CmdMkdirAll("/bin", "system"))
	proposeOK(t, g, CmdWriteFile("/users/mann/notes/todo.txt", "mann", []byte("ship it")))
	proposeOK(t, g, CmdWriteFile("/bin/hello", "system", []byte("hello image")))
	proposeOK(t, g, CmdSetWellKnown(core.CtxStdPrograms, "/bin"))
	proposeOK(t, g, CmdAddLink("/users/mann", "shared", core.ContextPair{Server: 42, Ctx: 7}))

	// A client mutation sent to the leader front replicates everywhere.
	req := &proto.Message{Op: proto.OpRemoveObject}
	proto.SetCSName(req, uint32(core.CtxDefault), "users/mann/notes/todo.txt")
	r, err := client.Send(req, members[0].rep.PID())
	if err != nil {
		t.Fatal(err)
	}
	if r.Op != proto.ReplyOK {
		t.Fatalf("leader Remove reply %v", r.Op)
	}
	for i, m := range members {
		if _, err := m.fs.Describe("/users/mann/notes/todo.txt"); err == nil {
			t.Fatalf("member %d still holds the removed file", i)
		}
	}

	// The same mutation through a follower front forwards to the leader
	// (the client never sees NotLeader while a leader exists).
	req2 := &proto.Message{Op: proto.OpRemoveObject}
	proto.SetCSName(req2, uint32(core.CtxDefault), "bin/hello")
	r2, err := client.Send(req2, members[1].rep.PID())
	if err != nil {
		t.Fatal(err)
	}
	if r2.Op != proto.ReplyOK {
		t.Fatalf("follower Remove reply %v", r2.Op)
	}
	for i, m := range members {
		if _, err := m.fs.Describe("/bin/hello"); err == nil {
			t.Fatalf("member %d still holds the file removed via follower", i)
		}
	}

	// MapContext through the front names the front, not the local server:
	// cached pairs must keep routing through the group.
	mc := &proto.Message{Op: proto.OpMapContext}
	proto.SetCSName(mc, uint32(core.CtxDefault), "users/mann")
	r3, err := client.Send(mc, members[0].rep.PID())
	if err != nil {
		t.Fatal(err)
	}
	if r3.Op != proto.ReplyOK {
		t.Fatalf("MapContext reply %v", r3.Op)
	}
	if pid, _ := proto.GetMapContextReply(r3); pid != uint32(members[0].rep.PID()) {
		t.Fatalf("MapContext names pid %d, want the front %d", pid, members[0].rep.PID())
	}

	// A read forwarded to the local server works through the front.
	q := &proto.Message{Op: proto.OpQueryObject}
	proto.SetCSName(q, uint32(core.CtxDefault), "users/mann")
	r4, err := client.Send(q, members[0].rep.PID())
	if err != nil {
		t.Fatal(err)
	}
	if r4.Op != proto.ReplyOK {
		t.Fatalf("QueryObject via front reply %v", r4.Op)
	}

	// After the mutation stream, every member holds the same name-space
	// structure and file bytes — the replicated invariant. Mtimes are
	// server-local (each member applies at its own virtual arrival time,
	// §11.5), so the comparison is modulo timestamps.
	img := structuralImage(t, members[0].fs)
	for i, m := range members[1:] {
		if !bytes.Equal(structuralImage(t, m.fs), img) {
			t.Fatalf("member %d volume diverged from member 0", i+1)
		}
	}

	// The service snapshot is the volume image; a fresh front over the
	// same member serves it unchanged (the rejoin path reads this).
	svc := NewReplicaService(members[0].fs)
	if !bytes.Equal(svc.Snapshot(), members[0].fs.vol.encode()) {
		t.Fatalf("service snapshot differs from the volume encoding")
	}
}

// structuralImage encodes a volume with every mtime zeroed: the bytes two
// replicas must agree on.
func structuralImage(t *testing.T, fs *FileServer) []byte {
	t.Helper()
	nodes, next, wk, err := decodeVolume(fs.vol.encode())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		n.mtime = 0
	}
	v := &volume{nodes: nodes, next: next, wellKnown: wk}
	return v.encode()
}

// TestReplicaApplyRejectsGarbage: malformed log commands must come back
// as errors, not crashes or silent corruption.
func TestReplicaApplyRejectsGarbage(t *testing.T) {
	_, members, _ := startReplicatedFS(t, 1)
	svc := NewReplicaService(members[0].fs)
	p := members[0].fs.Proc()
	for _, cmd := range [][]byte{nil, {}, {0xFF}, {cmdMkdirAll}, {cmdWriteFile, 0x02, 'x'}, {cmdWellKnown}, {cmdAddLink, 0x01}} {
		rep := svc.Apply(p, cmd)
		if rep.Op == proto.ReplyOK {
			t.Fatalf("Apply(%v) succeeded", cmd)
		}
	}
	if rep := svc.Apply(p, append([]byte{cmdMessage}, 0xFF)); rep.Op == proto.ReplyOK {
		t.Fatalf("Apply accepted an unparsable wrapped message")
	}
}
