// Package fileserver implements a V-System network file server: a
// hierarchical name space where the directories that define the naming of
// files live on the same server (and the same storage) as the files
// themselves — the arrangement the paper's distributed model favours
// (§2.2).
//
// Directories are contexts: a context identifier is the i-node number of a
// directory, so mapping a context id to a starting point for relative
// pathnames is an internal table lookup (§6). File names are stored in
// directory entries separate from the file descriptions, joined on demand
// when descriptors are fabricated for query operations and context
// directories (§5.6). Directory entries may also be cross-server links —
// pointers to contexts on other servers — which the name-mapping procedure
// follows by forwarding (§5.4, Figure 4).
package fileserver

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/proto"
	"repro/internal/vtime"
)

// ino is an i-node number. The root directory is always i-node 0, so
// core.CtxDefault names the root context.
type ino uint32

const rootIno ino = 0

// nodeKind discriminates i-node types.
type nodeKind uint8

const (
	kindFile nodeKind = iota + 1
	kindDir
)

// dirent is one directory entry: a name bound to a local i-node or to a
// context on another server.
type dirent struct {
	child  ino
	remote *core.ContextPair
}

// node is one i-node.
type node struct {
	id     ino
	kind   nodeKind
	data   []byte            // files
	names  map[string]dirent // directories
	parent ino
	name   string // a name within parent, for the inverse mapping (§6)
	owner  string
	perms  uint16
	mtime  vtime.Time
	// nlink counts directory entries binding this file; files with
	// several names make the inverse mapping many-to-one (§6).
	nlink int
}

// volume is the in-memory file system state. It implements
// core.ContextStore so directories act as contexts.
type volume struct {
	mu        sync.Mutex
	nodes     map[ino]*node
	next      ino
	wellKnown map[core.ContextID]ino
}

func newVolume() *volume {
	v := &volume{
		nodes:     make(map[ino]*node),
		wellKnown: make(map[core.ContextID]ino),
	}
	v.nodes[rootIno] = &node{
		id:    rootIno,
		kind:  kindDir,
		names: make(map[string]dirent),
		perms: proto.PermRead | proto.PermWrite,
	}
	v.next = rootIno
	return v
}

func (v *volume) alloc(kind nodeKind, parent ino, name, owner string, now vtime.Time) *node {
	v.next++
	n := &node{
		id:     v.next,
		kind:   kind,
		parent: parent,
		name:   name,
		owner:  owner,
		perms:  proto.PermRead | proto.PermWrite,
		mtime:  now,
		nlink:  1,
	}
	if kind == kindDir {
		n.names = make(map[string]dirent)
	}
	v.nodes[n.id] = n
	return n
}

func (v *volume) dir(ctx core.ContextID) (*node, error) {
	n, ok := v.nodes[ino(ctx)]
	if !ok || n.kind != kindDir {
		return nil, fmt.Errorf("%w: %#x", proto.ErrBadContext, uint32(ctx))
	}
	return n, nil
}

// NormalizeContext implements core.ContextStore: the default context is
// the root directory, well-known ids map through the configured alias
// table, and any other id must be a directory i-node.
func (v *volume) NormalizeContext(ctx core.ContextID) (core.ContextID, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if core.IsWellKnown(ctx) {
		concrete, ok := v.wellKnown[ctx]
		if !ok {
			return 0, fmt.Errorf("%w: well-known %#x not configured", proto.ErrBadContext, uint32(ctx))
		}
		ctx = core.ContextID(concrete)
	}
	if _, err := v.dir(ctx); err != nil {
		return 0, err
	}
	return ctx, nil
}

// LookupComponent implements core.ContextStore.
func (v *volume) LookupComponent(ctx core.ContextID, component string) (core.Entry, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	d, err := v.dir(ctx)
	if err != nil {
		return core.Entry{}, err
	}
	if component == ".." {
		return core.ContextEntry(core.ContextID(d.parent)), nil
	}
	e, ok := d.names[component]
	if !ok {
		return core.Entry{}, fmt.Errorf("%q: %w", component, proto.ErrNotFound)
	}
	if e.remote != nil {
		return core.RemoteEntry(*e.remote), nil
	}
	child := v.nodes[e.child]
	if child.kind == kindDir {
		return core.ContextEntry(core.ContextID(child.id)), nil
	}
	return core.ObjectEntry(proto.TagFile, uint32(child.id)), nil
}

// setWellKnown configures the directory a well-known context id denotes.
func (v *volume) setWellKnown(ctx core.ContextID, dir ino) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.wellKnown[ctx] = dir
}

// createFile creates an empty file named `name` in directory ctx.
func (v *volume) createFile(ctx core.ContextID, name, owner string, now vtime.Time) (*node, error) {
	if name == "" || name == "." || name == ".." {
		return nil, fmt.Errorf("%w: bad file name %q", proto.ErrBadArgs, name)
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	d, err := v.dir(ctx)
	if err != nil {
		return nil, err
	}
	if _, dup := d.names[name]; dup {
		return nil, fmt.Errorf("%q: %w", name, proto.ErrDuplicateName)
	}
	n := v.alloc(kindFile, d.id, name, owner, now)
	d.names[name] = dirent{child: n.id}
	d.mtime = now
	return n, nil
}

// mkdir creates a subdirectory of ctx.
func (v *volume) mkdir(ctx core.ContextID, name, owner string, now vtime.Time) (*node, error) {
	if name == "" || name == "." || name == ".." {
		return nil, fmt.Errorf("%w: bad directory name %q", proto.ErrBadArgs, name)
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	d, err := v.dir(ctx)
	if err != nil {
		return nil, err
	}
	if _, dup := d.names[name]; dup {
		return nil, fmt.Errorf("%q: %w", name, proto.ErrDuplicateName)
	}
	n := v.alloc(kindDir, d.id, name, owner, now)
	d.names[name] = dirent{child: n.id}
	d.mtime = now
	return n, nil
}

// addAlias binds an additional name in ctx for an existing file — a
// same-server hard link. Directories cannot be aliased (no cycles).
func (v *volume) addAlias(ctx core.ContextID, name string, id uint32, now vtime.Time) error {
	if name == "" || name == "." || name == ".." {
		return fmt.Errorf("%w: bad name %q", proto.ErrBadArgs, name)
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	d, err := v.dir(ctx)
	if err != nil {
		return err
	}
	n, ok := v.nodes[ino(id)]
	if !ok {
		return fmt.Errorf("%w: i-node %d", proto.ErrNotFound, id)
	}
	if n.kind != kindFile {
		return fmt.Errorf("%w: only files can be aliased", proto.ErrIllegalRequest)
	}
	if _, dup := d.names[name]; dup {
		return fmt.Errorf("%q: %w", name, proto.ErrDuplicateName)
	}
	d.names[name] = dirent{child: n.id}
	n.nlink++
	d.mtime = now
	return nil
}

// addLink binds name in ctx to a context on another server (Figure 4's
// curved arrow).
func (v *volume) addLink(ctx core.ContextID, name string, target core.ContextPair, now vtime.Time) error {
	if name == "" {
		return fmt.Errorf("%w: empty link name", proto.ErrBadArgs)
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	d, err := v.dir(ctx)
	if err != nil {
		return err
	}
	if _, dup := d.names[name]; dup {
		return fmt.Errorf("%q: %w", name, proto.ErrDuplicateName)
	}
	t := target
	d.names[name] = dirent{remote: &t}
	d.mtime = now
	return nil
}

// remove unbinds name from ctx, deleting the object it names. Directories
// must be empty; removing a cross-server link removes only the binding —
// the remote objects are unaffected, exactly because the name lives here
// and the objects live there.
func (v *volume) remove(ctx core.ContextID, name string, now vtime.Time) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	d, err := v.dir(ctx)
	if err != nil {
		return err
	}
	e, ok := d.names[name]
	if !ok {
		return fmt.Errorf("%q: %w", name, proto.ErrNotFound)
	}
	if e.remote == nil {
		child := v.nodes[e.child]
		if child.kind == kindDir && len(child.names) > 0 {
			return fmt.Errorf("%q: %w", name, proto.ErrNotEmpty)
		}
		child.nlink--
		if child.nlink <= 0 {
			// Last name gone: the object dies with it.
			delete(v.nodes, e.child)
		}
	}
	delete(d.names, name)
	d.mtime = now
	return nil
}

// removeByIno deletes an object by its low-level identifier, unbinding it
// from its parent directory (baseline-model support).
func (v *volume) removeByIno(id uint32, now vtime.Time) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	n, ok := v.nodes[ino(id)]
	if !ok || n.id == rootIno {
		return fmt.Errorf("%w: i-node %d", proto.ErrNotFound, id)
	}
	if n.kind == kindDir && len(n.names) > 0 {
		return fmt.Errorf("i-node %d: %w", id, proto.ErrNotEmpty)
	}
	if n.nlink > 1 {
		// The recorded (parent, name) identifies only one of several
		// bindings; removal by UID is ambiguous (§6's many-to-one
		// problem seen from the baseline's side).
		return fmt.Errorf("i-node %d has %d names: %w", id, n.nlink, proto.ErrIllegalRequest)
	}
	if parent, ok := v.nodes[n.parent]; ok {
		delete(parent.names, n.name)
		parent.mtime = now
	}
	delete(v.nodes, n.id)
	return nil
}

// rename moves oldName in oldCtx to newName in newCtx (both directories
// on this server).
func (v *volume) rename(oldCtx core.ContextID, oldName string, newCtx core.ContextID, newName string, now vtime.Time) error {
	if newName == "" || newName == "." || newName == ".." {
		return fmt.Errorf("%w: bad name %q", proto.ErrBadArgs, newName)
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	from, err := v.dir(oldCtx)
	if err != nil {
		return err
	}
	to, err := v.dir(newCtx)
	if err != nil {
		return err
	}
	e, ok := from.names[oldName]
	if !ok {
		return fmt.Errorf("%q: %w", oldName, proto.ErrNotFound)
	}
	if _, dup := to.names[newName]; dup {
		return fmt.Errorf("%q: %w", newName, proto.ErrDuplicateName)
	}
	delete(from.names, oldName)
	to.names[newName] = e
	if e.remote == nil {
		child := v.nodes[e.child]
		child.parent = to.id
		child.name = newName
		child.mtime = now
	}
	from.mtime = now
	to.mtime = now
	return nil
}

// filePerms returns the permission bits of the file with the given
// i-node number, validating that it exists and is a file.
func (v *volume) filePerms(id uint32) (uint16, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	n, ok := v.nodes[ino(id)]
	if !ok || n.kind != kindFile {
		return 0, fmt.Errorf("%w: i-node %d", proto.ErrNotFound, id)
	}
	return n.perms, nil
}

// readAt copies file bytes at off into buf.
func (v *volume) readAt(id uint32, off int64, buf []byte) (int, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	n, ok := v.nodes[ino(id)]
	if !ok || n.kind != kindFile {
		return 0, fmt.Errorf("%w: i-node %d", proto.ErrNotFound, id)
	}
	if off >= int64(len(n.data)) {
		return 0, proto.ErrEndOfFile
	}
	return copy(buf, n.data[off:]), nil
}

// writeAt stores bytes into a file at off, growing it as needed.
func (v *volume) writeAt(id uint32, off int64, data []byte, now vtime.Time) (int, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	n, ok := v.nodes[ino(id)]
	if !ok || n.kind != kindFile {
		return 0, fmt.Errorf("%w: i-node %d", proto.ErrNotFound, id)
	}
	if off < 0 {
		return 0, fmt.Errorf("%w: negative offset", proto.ErrBadArgs)
	}
	if need := int(off) + len(data); need > len(n.data) {
		grown := make([]byte, need)
		copy(grown, n.data)
		n.data = grown
	}
	n.mtime = now
	return copy(n.data[off:], data), nil
}

// truncate empties a file.
func (v *volume) truncate(id uint32, now vtime.Time) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	n, ok := v.nodes[ino(id)]
	if !ok || n.kind != kindFile {
		return fmt.Errorf("%w: i-node %d", proto.ErrNotFound, id)
	}
	n.data = nil
	n.mtime = now
	return nil
}

// size returns the current length of a file.
func (v *volume) size(id uint32) (int, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	n, ok := v.nodes[ino(id)]
	if !ok || n.kind != kindFile {
		return 0, fmt.Errorf("%w: i-node %d", proto.ErrNotFound, id)
	}
	return len(n.data), nil
}

// snapshot copies out a file's contents (program loading).
func (v *volume) snapshot(id uint32) ([]byte, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	n, ok := v.nodes[ino(id)]
	if !ok || n.kind != kindFile {
		return nil, fmt.Errorf("%w: i-node %d", proto.ErrNotFound, id)
	}
	out := make([]byte, len(n.data))
	copy(out, n.data)
	return out, nil
}

// describeNode fabricates a descriptor for the node bound as `name` in a
// directory — names and descriptions are stored separately and joined on
// demand (§5.6).
func (v *volume) describeNode(name string, e dirent) proto.Descriptor {
	if e.remote != nil {
		return proto.Descriptor{
			Tag:          proto.TagLink,
			Name:         name,
			Perms:        proto.PermRead,
			TypeSpecific: [2]uint32{uint32(e.remote.Server), uint32(e.remote.Ctx)},
		}
	}
	n := v.nodes[e.child]
	d := proto.Descriptor{
		ObjectID: uint32(n.id),
		Name:     name,
		Owner:    n.owner,
		Perms:    n.perms,
		Modified: uint64(n.mtime),
	}
	if n.kind == kindDir {
		d.Tag = proto.TagDirectory
		d.Size = uint32(len(n.names))
	} else {
		d.Tag = proto.TagFile
		d.Size = uint32(len(n.data))
		d.TypeSpecific[0] = uint32(n.nlink)
	}
	return d
}

// describe fabricates the descriptor of the object named `name` in ctx.
func (v *volume) describe(ctx core.ContextID, name string) (proto.Descriptor, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	d, err := v.dir(ctx)
	if err != nil {
		return proto.Descriptor{}, err
	}
	if name == "" {
		return v.describeNode(d.name, dirent{child: d.id}), nil
	}
	e, ok := d.names[name]
	if !ok {
		return proto.Descriptor{}, fmt.Errorf("%q: %w", name, proto.ErrNotFound)
	}
	return v.describeNode(name, e), nil
}

// list fabricates the context directory of ctx: one descriptor per
// binding, sorted by name.
func (v *volume) list(ctx core.ContextID) ([]proto.Descriptor, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	d, err := v.dir(ctx)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(d.names))
	for n := range d.names {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]proto.Descriptor, 0, len(names))
	for _, n := range names {
		out = append(out, v.describeNode(n, d.names[n]))
	}
	return out, nil
}

// modify applies the modifiable fields of a written descriptor to the
// object it names in ctx: owner and permission bits; other fields are
// ignored, as servers are free to do (§5.5).
func (v *volume) modify(ctx core.ContextID, rec proto.Descriptor, now vtime.Time) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	d, err := v.dir(ctx)
	if err != nil {
		return err
	}
	e, ok := d.names[rec.Name]
	if !ok {
		return fmt.Errorf("%q: %w", rec.Name, proto.ErrNotFound)
	}
	if e.remote != nil {
		return fmt.Errorf("%q: %w: cannot modify a remote link's description here", rec.Name, proto.ErrIllegalRequest)
	}
	n := v.nodes[e.child]
	n.perms = rec.Perms
	if rec.Owner != "" {
		n.owner = rec.Owner
	}
	n.mtime = now
	return nil
}

// pathOf reconstructs the pathname of a directory context by walking
// parent pointers — the inverse mapping, with all the §6 caveats (it
// returns *a* name, which may not be the one the client used).
func (v *volume) pathOf(ctx core.ContextID) (string, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	n, ok := v.nodes[ino(ctx)]
	if !ok {
		return "", fmt.Errorf("%w: %#x", proto.ErrBadContext, uint32(ctx))
	}
	if n.id == rootIno {
		return "/", nil
	}
	var parts []string
	for n.id != rootIno {
		parent, ok := v.nodes[n.parent]
		if !ok {
			return "", fmt.Errorf("%w: orphaned context", proto.ErrNotFound)
		}
		parts = append(parts, n.name)
		n = parent
	}
	var b []byte
	for i := len(parts) - 1; i >= 0; i-- {
		b = append(b, core.Separator)
		b = append(b, parts[i]...)
	}
	return string(b), nil
}

var _ core.ContextStore = (*volume)(nil)
