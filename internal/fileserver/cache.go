package fileserver

import (
	"container/list"
	"sync"
)

// blockCache is the file server's buffer cache: pages read from (or
// written through to) the disk stay in server memory, so repeated access
// costs no disk time — the paper's program-load measurement explicitly
// assumes "the program text is already in the file server's memory
// buffers" (§3.1). LRU with a fixed page budget.
type blockCache struct {
	mu    sync.Mutex
	cap   int
	pages map[pageKey]*list.Element
	lru   *list.List // front = most recently used; values are pageKey
}

type pageKey struct {
	ino   uint32
	block int64
}

// defaultCachePages is the default buffer cache size, 256 × 512 B =
// 128 KB — of the order of the paper's file server buffer pools.
const defaultCachePages = 256

func newBlockCache(capPages int) *blockCache {
	if capPages <= 0 {
		capPages = defaultCachePages
	}
	return &blockCache{
		cap:   capPages,
		pages: make(map[pageKey]*list.Element, capPages),
		lru:   list.New(),
	}
}

// contains reports whether the page is buffered, refreshing its LRU
// position.
func (c *blockCache) contains(ino uint32, block int64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.pages[pageKey{ino, block}]
	if ok {
		c.lru.MoveToFront(el)
	}
	return ok
}

// insert records the page as buffered, evicting the least recently used
// page if the budget is exceeded.
func (c *blockCache) insert(ino uint32, block int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := pageKey{ino, block}
	if el, ok := c.pages[key]; ok {
		c.lru.MoveToFront(el)
		return
	}
	c.pages[key] = c.lru.PushFront(key)
	for c.lru.Len() > c.cap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.pages, oldest.Value.(pageKey))
	}
}

// invalidate drops all buffered pages of one file (truncate/remove).
func (c *blockCache) invalidate(ino uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, el := range c.pages {
		if key.ino == ino {
			c.lru.Remove(el)
			delete(c.pages, key)
		}
	}
}

// clear drops every buffered page (snapshot restore replaces the whole
// volume, so the cache describes contents that no longer exist).
func (c *blockCache) clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pages = make(map[pageKey]*list.Element, c.cap)
	c.lru.Init()
}

// size returns the number of buffered pages.
func (c *blockCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
