package fileserver

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/proto"
	"repro/internal/vio"
	"repro/internal/vtime"
)

// Option configures a file server.
type Option func(*FileServer)

// WithReadAhead controls sequential read-ahead in the server's buffer
// cache (on by default). The E3 experiment compares both settings.
func WithReadAhead(on bool) Option {
	return func(fs *FileServer) { fs.readAhead = on }
}

// WithDiskPageTime overrides the simulated disk's page service time.
func WithDiskPageTime(d time.Duration) Option {
	return func(fs *FileServer) { fs.disk = disk.New(d) }
}

// WithBufferCachePages sets the buffer cache size in 512-byte pages.
func WithBufferCachePages(pages int) Option {
	return func(fs *FileServer) { fs.cache = newBlockCache(pages) }
}

// WithTeam sets the server-team size — the number of serving processes
// (§3.1). The default 1 is the calibrated single-process baseline; with
// n > 1 a receptionist forwards each request to one of n workers, so one
// client's disk wait overlaps other requests' compute.
func WithTeam(n int) Option {
	return func(fs *FileServer) { fs.teamSize = n }
}

// CachedPages returns the number of pages currently in the buffer cache.
func (fs *FileServer) CachedPages() int { return fs.cache.size() }

// FileServer is a CSNH server implementing files and directories.
type FileServer struct {
	srv       *core.Server
	proc      *kernel.Process
	vol       *volume
	disk      *disk.Disk
	cache     *blockCache
	reg       *vio.Registry
	readAhead bool
	teamSize  int
	name      string
}

// Start spawns a file server process on host and runs it.
func Start(host *kernel.Host, name string, opts ...Option) (*FileServer, error) {
	proc, err := host.NewProcess("fileserver[" + name + "]")
	if err != nil {
		return nil, err
	}
	model := host.Kernel().Model()
	fs := &FileServer{
		proc:      proc,
		vol:       newVolume(),
		disk:      disk.New(model.DiskPageTime),
		cache:     newBlockCache(defaultCachePages),
		reg:       vio.NewRegistry(),
		readAhead: true,
		teamSize:  1,
		name:      name,
	}
	for _, opt := range opts {
		opt(fs)
	}
	fs.srv = core.NewServer(proc, fs.vol, fs, core.WithTeam(fs.teamSize))
	if err := fs.srv.Start(); err != nil {
		return nil, err
	}
	return fs, nil
}

// Err reports why the server stopped serving (see core.Server.Err).
func (fs *FileServer) Err() error { return fs.srv.Err() }

// Exited is closed once the serving team has stopped, after its exit
// cause and trace event are recorded (see core.Team.Exited).
func (fs *FileServer) Exited() <-chan struct{} { return fs.srv.Exited() }

// TeamSize returns the number of serving processes.
func (fs *FileServer) TeamSize() int { return fs.srv.TeamSize() }

// PID returns the server's process identifier.
func (fs *FileServer) PID() kernel.PID { return fs.proc.PID() }

// Proc returns the server process.
func (fs *FileServer) Proc() *kernel.Process { return fs.proc }

// Name returns the server's configured name.
func (fs *FileServer) Name() string { return fs.name }

// RootPair returns the fully-qualified pair of the server's root context.
func (fs *FileServer) RootPair() core.ContextPair { return fs.srv.Pair(core.CtxDefault) }

// Disk exposes the simulated disk (for experiment statistics).
func (fs *FileServer) Disk() *disk.Disk { return fs.disk }

// OpenInstances returns the number of open instances.
func (fs *FileServer) OpenInstances() int { return fs.reg.Count() }

// --- boot-time seeding (used by the rig and examples) ---

// MkdirAll creates the directory path (like "/users/mann") and returns
// its context id.
func (fs *FileServer) MkdirAll(path, owner string) (core.ContextID, error) {
	ctx := core.ContextID(rootIno)
	for _, comp := range strings.Split(path, string(core.Separator)) {
		if comp == "" {
			continue
		}
		e, err := fs.vol.LookupComponent(ctx, comp)
		switch {
		case err == nil && e.Local != nil:
			ctx = *e.Local
			continue
		case err == nil:
			return 0, fmt.Errorf("%q: %w", comp, proto.ErrNotAContext)
		case !core.IsNotFound(err):
			return 0, err
		}
		n, err := fs.vol.mkdir(ctx, comp, owner, fs.proc.Now())
		if err != nil {
			return 0, err
		}
		ctx = core.ContextID(n.id)
	}
	return ctx, nil
}

// WriteFile creates (or replaces) the file at path with contents.
func (fs *FileServer) WriteFile(path, owner string, contents []byte) error {
	dir, base := splitPath(path)
	ctx, err := fs.MkdirAll(dir, owner)
	if err != nil {
		return err
	}
	e, err := fs.vol.LookupComponent(ctx, base)
	var id uint32
	switch {
	case err == nil && e.Object != nil:
		id = e.Object.ID
		if err := fs.vol.truncate(id, fs.proc.Now()); err != nil {
			return err
		}
		fs.cache.invalidate(id)
	case err == nil:
		return fmt.Errorf("%q: %w", base, proto.ErrDuplicateName)
	case core.IsNotFound(err):
		n, err := fs.vol.createFile(ctx, base, owner, fs.proc.Now())
		if err != nil {
			return err
		}
		id = uint32(n.id)
	default:
		return err
	}
	_, err = fs.vol.writeAt(id, 0, contents, fs.proc.Now())
	return err
}

// AddLink binds a name in the directory at dirPath to a context on
// another server.
func (fs *FileServer) AddLink(dirPath, name string, target core.ContextPair) error {
	ctx, err := fs.MkdirAll(dirPath, "")
	if err != nil {
		return err
	}
	return fs.vol.addLink(ctx, name, target, fs.proc.Now())
}

// SetWellKnown maps a well-known context id (home directory, standard
// programs, ...) to the directory at path.
func (fs *FileServer) SetWellKnown(ctx core.ContextID, path string) error {
	dir, err := fs.MkdirAll(path, "")
	if err != nil {
		return err
	}
	fs.vol.setWellKnown(ctx, ino(dir))
	return nil
}

// Describe fabricates the description record of the object at path — an
// administrative convenience for seeding and experiments, equivalent to a
// local OpQueryObject.
func (fs *FileServer) Describe(path string) (proto.Descriptor, error) {
	res, fwd, err := core.Interpret(fs.vol, fs.proc, path, 0, core.CtxDefault)
	if err != nil {
		return proto.Descriptor{}, err
	}
	if fwd != nil {
		return proto.Descriptor{}, fmt.Errorf("%q: %w: crosses into another server", path, proto.ErrIllegalRequest)
	}
	if ctx, ok := res.ResolvesToContext(); ok {
		return fs.vol.describe(ctx, "")
	}
	if res.Entry == nil {
		return proto.Descriptor{}, fmt.Errorf("%q: %w", path, proto.ErrNotFound)
	}
	return fs.vol.describe(res.Final, res.Last)
}

func splitPath(path string) (dir, base string) {
	i := strings.LastIndexByte(path, byte(core.Separator))
	if i < 0 {
		return "", path
	}
	return path[:i], path[i+1:]
}

// --- protocol handler ---

// HandleNamed implements core.Handler for CSname operations that resolved
// on this server.
func (fs *FileServer) HandleNamed(req *core.Request, res *core.Resolution) *proto.Message {
	switch req.Msg.Op {
	case proto.OpCreateInstance:
		return fs.handleOpen(req, res)
	case proto.OpQueryObject:
		return fs.handleQuery(req, res)
	case proto.OpModifyObject:
		return fs.handleModify(req, res)
	case proto.OpRemoveObject:
		return fs.handleRemove(req, res)
	case proto.OpRenameObject:
		return fs.handleRename(req, res)
	case proto.OpLinkObject:
		return fs.handleAlias(req, res)
	case proto.OpAddContextName:
		return fs.handleAddLink(req, res)
	case proto.OpDeleteContextName:
		return fs.handleRemove(req, res)
	case proto.OpLoadProgram:
		return fs.handleLoadProgram(req, res)
	default:
		return core.ErrorReplyMsg(proto.ErrIllegalRequest)
	}
}

// HandleOp implements core.Handler for non-name operations.
func (fs *FileServer) HandleOp(req *core.Request) *proto.Message {
	if reply := fs.reg.HandleOp(req.Proc(), req.Msg); reply != nil {
		return reply
	}
	switch req.Msg.Op {
	case proto.OpGetContextName:
		path, err := fs.vol.pathOf(core.ContextID(req.Msg.F[0]))
		if err != nil {
			return core.ErrorReplyMsg(err)
		}
		reply := core.OkReply()
		reply.Segment = []byte(path)
		return reply
	case proto.OpOpenByUID:
		// Baseline support (§2.2 comparison): open by the low-level
		// identifier a centralized name server handed out, bypassing
		// name interpretation.
		return fs.openFileInstance(req.Proc(), req.Msg.F[3], "", proto.OpenMode(req.Msg))
	case proto.OpRemoveByUID:
		if err := fs.vol.removeByIno(req.Msg.F[3], req.Proc().Now()); err != nil {
			return core.ErrorReplyMsg(err)
		}
		return core.OkReply()
	default:
		return core.ErrorReplyMsg(proto.ErrIllegalRequest)
	}
}

func (fs *FileServer) handleOpen(req *core.Request, res *core.Resolution) *proto.Message {
	mode := proto.OpenMode(req.Msg)
	if mode&proto.ModeDirectory != 0 {
		ctx, ok := res.ResolvesToContext()
		switch {
		case ok:
		case res.Entry == nil && mode&proto.ModeCreate != 0:
			// Directory-mode create of an unbound name makes a new
			// context (the mkdir of the protocol).
			n, err := fs.vol.mkdir(res.Final, res.Last, "", req.Proc().Now())
			if err != nil {
				return core.ErrorReplyMsg(err)
			}
			ctx = core.ContextID(n.id)
		case res.Entry == nil:
			return core.ErrorReplyMsg(proto.ErrNotFound)
		case mode&proto.ModeCreate != 0:
			// The name is bound to a non-context object.
			return core.ErrorReplyMsg(proto.ErrDuplicateName)
		default:
			return core.ErrorReplyMsg(proto.ErrNotAContext)
		}
		pattern, err := proto.DirPattern(req.Msg)
		if err != nil {
			return core.ErrorReplyMsg(err)
		}
		return fs.openDirectoryInstance(req.Proc(), ctx, res.Name, pattern)
	}
	if _, isCtx := res.ResolvesToContext(); isCtx {
		return core.ErrorReplyMsg(fmt.Errorf("%w: opening a directory requires directory mode", proto.ErrModeNotSupported))
	}
	if res.Entry == nil {
		if mode&proto.ModeCreate == 0 {
			return core.ErrorReplyMsg(proto.ErrNotFound)
		}
		n, err := fs.vol.createFile(res.Final, res.Last, "", req.Proc().Now())
		if err != nil {
			return core.ErrorReplyMsg(err)
		}
		return fs.openFileInstance(req.Proc(), uint32(n.id), res.Name, mode)
	}
	return fs.openFileInstance(req.Proc(), res.Entry.Object.ID, res.Name, mode)
}

func (fs *FileServer) openFileInstance(p *kernel.Process, id uint32, name string, mode uint32) *proto.Message {
	perms, err := fs.vol.filePerms(id)
	if err != nil {
		return core.ErrorReplyMsg(err)
	}
	// Enforce the access-control bits of the file's description (§5.5):
	// they are exactly what the modify operation edits.
	if mode&proto.ModeRead != 0 && perms&proto.PermRead == 0 {
		return core.ErrorReplyMsg(proto.ErrNoPermission)
	}
	if mode&(proto.ModeWrite|proto.ModeAppend|proto.ModeTruncate) != 0 && perms&proto.PermWrite == 0 {
		return core.ErrorReplyMsg(proto.ErrNoPermission)
	}
	if mode&proto.ModeTruncate != 0 {
		if err := fs.vol.truncate(id, p.Now()); err != nil {
			return core.ErrorReplyMsg(err)
		}
		fs.cache.invalidate(id)
	}
	inst := &fileInstance{fs: fs, ino: id, mode: mode, prefetchBlock: -1}
	iid, err := fs.reg.Open(inst, name)
	if err != nil {
		return core.ErrorReplyMsg(err)
	}
	info := inst.Info()
	info.ID = iid
	reply := core.OkReply()
	proto.SetInstanceInfo(reply, info)
	proto.SetInstanceOwner(reply, uint32(fs.proc.PID()))
	return reply
}

func (fs *FileServer) openDirectoryInstance(p *kernel.Process, ctx core.ContextID, name, pattern string) *proto.Message {
	records, err := fs.vol.list(ctx)
	if err != nil {
		return core.ErrorReplyMsg(err)
	}
	records = core.FilterRecords(records, pattern)
	model := p.Kernel().Model()
	p.ChargeCompute(time.Duration(len(records)) * model.DescriptorFabricateCost)
	inst := vio.NewDirectoryInstance(records, func(rec proto.Descriptor) error {
		return fs.vol.modify(ctx, rec, fs.proc.Now())
	})
	iid, err := fs.reg.Open(inst, name)
	if err != nil {
		return core.ErrorReplyMsg(err)
	}
	info := inst.Info()
	info.ID = iid
	reply := core.OkReply()
	proto.SetInstanceInfo(reply, info)
	proto.SetInstanceOwner(reply, uint32(fs.proc.PID()))
	return reply
}

func (fs *FileServer) handleQuery(req *core.Request, res *core.Resolution) *proto.Message {
	model := req.Proc().Kernel().Model()
	req.Proc().ChargeCompute(model.DescriptorFabricateCost)
	var (
		d   proto.Descriptor
		err error
	)
	if ctx, ok := res.ResolvesToContext(); ok {
		d, err = fs.vol.describe(ctx, "")
	} else {
		d, err = fs.vol.describe(res.Final, res.Last)
	}
	if err != nil {
		return core.ErrorReplyMsg(err)
	}
	reply := core.OkReply()
	reply.Segment = d.AppendEncoded(nil)
	return reply
}

func (fs *FileServer) handleModify(req *core.Request, res *core.Resolution) *proto.Message {
	name, _, err := proto.CSName(req.Msg)
	if err != nil {
		return core.ErrorReplyMsg(err)
	}
	recBytes := req.Msg.Segment[len(name):]
	rec, _, err := proto.DecodeDescriptor(recBytes)
	if err != nil {
		return core.ErrorReplyMsg(err)
	}
	if res.Entry == nil {
		return core.ErrorReplyMsg(proto.ErrNotFound)
	}
	rec.Name = res.Last
	if err := fs.vol.modify(res.Final, rec, req.Proc().Now()); err != nil {
		return core.ErrorReplyMsg(err)
	}
	return core.OkReply()
}

func (fs *FileServer) handleRemove(req *core.Request, res *core.Resolution) *proto.Message {
	if res.Last == "" {
		return core.ErrorReplyMsg(fmt.Errorf("%w: cannot remove a context through itself", proto.ErrIllegalRequest))
	}
	if res.Entry == nil {
		return core.ErrorReplyMsg(proto.ErrNotFound)
	}
	if err := fs.vol.remove(res.Final, res.Last, req.Proc().Now()); err != nil {
		return core.ErrorReplyMsg(err)
	}
	return core.OkReply()
}

func (fs *FileServer) handleRename(req *core.Request, res *core.Resolution) *proto.Message {
	if res.Entry == nil {
		return core.ErrorReplyMsg(proto.ErrNotFound)
	}
	newName, err := proto.RenameNewName(req.Msg)
	if err != nil {
		return core.ErrorReplyMsg(err)
	}
	// The new name is interpreted in the same starting context as the
	// old; it must resolve within this server (cross-server renames are
	// not supported — the name would have to move with the object).
	nres, fwd, err := core.Interpret(fs.vol, req.Proc(), newName, 0, core.ContextID(proto.CSNameContext(req.Msg)))
	if err != nil {
		return core.ErrorReplyMsg(err)
	}
	if fwd != nil {
		return core.ErrorReplyMsg(fmt.Errorf("%w: rename across servers", proto.ErrIllegalRequest))
	}
	if nres.Last == "" {
		return core.ErrorReplyMsg(fmt.Errorf("%w: rename target is a context", proto.ErrBadArgs))
	}
	if nres.Entry != nil {
		return core.ErrorReplyMsg(fmt.Errorf("%q: %w", nres.Last, proto.ErrDuplicateName))
	}
	if err := fs.vol.rename(res.Final, res.Last, nres.Final, nres.Last, req.Proc().Now()); err != nil {
		return core.ErrorReplyMsg(err)
	}
	return core.OkReply()
}

// handleAlias implements OpLinkObject: an additional same-server name
// for an existing file, making the inverse mapping many-to-one (§6).
func (fs *FileServer) handleAlias(req *core.Request, res *core.Resolution) *proto.Message {
	if _, isCtx := res.ResolvesToContext(); isCtx {
		return core.ErrorReplyMsg(fmt.Errorf("%w: only files can be aliased", proto.ErrIllegalRequest))
	}
	if res.Entry == nil {
		return core.ErrorReplyMsg(proto.ErrNotFound)
	}
	newName, err := proto.RenameNewName(req.Msg)
	if err != nil {
		return core.ErrorReplyMsg(err)
	}
	nres, fwd, err := core.Interpret(fs.vol, req.Proc(), newName, 0, core.ContextID(proto.CSNameContext(req.Msg)))
	if err != nil {
		return core.ErrorReplyMsg(err)
	}
	if fwd != nil {
		return core.ErrorReplyMsg(fmt.Errorf("%w: alias across servers", proto.ErrIllegalRequest))
	}
	if nres.Last == "" {
		return core.ErrorReplyMsg(fmt.Errorf("%w: alias target is a context", proto.ErrBadArgs))
	}
	if nres.Entry != nil {
		return core.ErrorReplyMsg(fmt.Errorf("%q: %w", nres.Last, proto.ErrDuplicateName))
	}
	if err := fs.vol.addAlias(nres.Final, nres.Last, res.Entry.Object.ID, req.Proc().Now()); err != nil {
		return core.ErrorReplyMsg(err)
	}
	return core.OkReply()
}

func (fs *FileServer) handleAddLink(req *core.Request, res *core.Resolution) *proto.Message {
	if res.Last == "" {
		return core.ErrorReplyMsg(proto.ErrBadArgs)
	}
	if res.Entry != nil {
		return core.ErrorReplyMsg(fmt.Errorf("%q: %w", res.Last, proto.ErrDuplicateName))
	}
	dyn, pid, ctx := proto.AddContextTarget(req.Msg)
	if dyn {
		return core.ErrorReplyMsg(fmt.Errorf("%w: file servers support only static links", proto.ErrModeNotSupported))
	}
	target := core.ContextPair{Server: kernel.PID(pid), Ctx: core.ContextID(ctx)}
	if err := fs.vol.addLink(res.Final, res.Last, target, req.Proc().Now()); err != nil {
		return core.ErrorReplyMsg(err)
	}
	return core.OkReply()
}

// handleLoadProgram transfers the named program image into the
// requester's buffer with MoveTo, the diskless-workstation program load
// path (§3.1). Program text is assumed to be in the server's memory
// buffers, as in the paper's measurement.
func (fs *FileServer) handleLoadProgram(req *core.Request, res *core.Resolution) *proto.Message {
	if res.Entry == nil || res.Entry.Object == nil {
		return core.ErrorReplyMsg(proto.ErrNotFound)
	}
	data, err := fs.vol.snapshot(res.Entry.Object.ID)
	if err != nil {
		return core.ErrorReplyMsg(err)
	}
	n, err := req.Proc().MoveTo(req.From, 0, data)
	if err != nil {
		return core.ErrorReplyMsg(err)
	}
	reply := core.OkReply()
	reply.F[3] = uint32(n)
	return reply
}

// fileInstance is an open file with per-instance read-ahead state. The
// serving process's clock is the time base for disk scheduling; under a
// server team concurrent workers may touch the same instance, so the
// read-ahead state is guarded by its own lock.
type fileInstance struct {
	fs   *FileServer
	ino  uint32
	mode uint32

	mu            sync.Mutex
	prefetchBlock int64 // block the buffer cache has prefetched (-1: none)
	prefetchDone  vtime.Time
}

func (fi *fileInstance) Info() proto.InstanceInfo {
	size, err := fi.fs.vol.size(fi.ino)
	if err != nil {
		size = 0
	}
	flags := uint32(0)
	if fi.mode&proto.ModeRead != 0 {
		flags |= proto.ModeRead
	}
	if fi.mode&(proto.ModeWrite|proto.ModeCreate|proto.ModeAppend) != 0 {
		flags |= proto.ModeWrite
	}
	return proto.InstanceInfo{
		SizeBytes: uint32(size),
		BlockSize: uint32(fi.fs.proc.Kernel().Model().DiskPageSize),
		Flags:     flags,
	}
}

// ReadAt serves one page, charging disk time to the serving process p: a
// page already prefetched by the buffer cache is ready at its
// prefetch-completion time; otherwise a synchronous fetch is issued. With
// read-ahead enabled, serving page p starts the fetch of page p+1
// immediately, so a sequential reader finds the next page (nearly) ready
// — the §3.1 streaming file access.
func (fi *fileInstance) ReadAt(p *kernel.Process, off int64, buf []byte) (int, error) {
	// End-of-file is answered from the i-node, without touching the disk.
	size, err := fi.fs.vol.size(fi.ino)
	if err != nil {
		return 0, err
	}
	if off >= int64(size) {
		return 0, proto.ErrEndOfFile
	}
	fi.mu.Lock()
	defer fi.mu.Unlock()
	pageSize := int64(p.Kernel().Model().DiskPageSize)
	block := off / pageSize
	clock := p.Clock()
	now := clock.Now()

	var ready vtime.Time
	switch {
	case fi.prefetchBlock == block:
		// The per-instance read-ahead already has it in flight.
		ready = fi.prefetchDone
		if now > ready {
			ready = now
		}
		fi.fs.cache.insert(fi.ino, block)
	case fi.fs.cache.contains(fi.ino, block):
		// Buffer cache hit: no disk time (§3.1's "already in the file
		// server's memory buffers").
		ready = now
		p.Kernel().Metrics().
			Counter("fs_cache_hits_total", metrics.Labels{Server: fi.fs.name}).Inc()
	default:
		ready = fi.fs.disk.Fetch(now)
		fi.fs.cache.insert(fi.ino, block)
		p.Kernel().Metrics().
			Counter("fs_cache_misses_total", metrics.Labels{Server: fi.fs.name}).Inc()
	}
	clock.Observe(ready)
	if fi.fs.readAhead {
		next := block + 1
		if !fi.fs.cache.contains(fi.ino, next) && int64(size) > next*pageSize {
			fi.prefetchBlock = next
			fi.prefetchDone = fi.fs.disk.Fetch(ready)
			fi.fs.cache.insert(fi.ino, next)
		}
	}
	return fi.fs.vol.readAt(fi.ino, off, buf)
}

// WriteAt stores data write-behind: the pages go to the buffer cache and
// the disk write completes asynchronously, so no disk latency is charged.
func (fi *fileInstance) WriteAt(p *kernel.Process, off int64, data []byte) (int, error) {
	n, err := fi.fs.vol.writeAt(fi.ino, off, data, p.Now())
	pageSize := int64(p.Kernel().Model().DiskPageSize)
	for b := off / pageSize; b <= (off+int64(n))/pageSize; b++ {
		fi.fs.cache.insert(fi.ino, b)
	}
	return n, err
}

func (fi *fileInstance) Release() {}

var _ vio.Instance = (*fileInstance)(nil)
var _ core.Handler = (*FileServer)(nil)
