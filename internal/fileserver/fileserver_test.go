package fileserver

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/proto"
	"repro/internal/vio"
	"repro/internal/vtime"
)

func startFS(t *testing.T) (*FileServer, *kernel.Process) {
	t.Helper()
	k := kernel.New(netsim.New(vtime.DefaultModel(), 1))
	host := k.NewHost("fs")
	fs, err := Start(host, "test")
	if err != nil {
		t.Fatal(err)
	}
	clientHost := k.NewHost("ws")
	client, err := clientHost.NewProcess("client")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		fs.Proc().Destroy()
		client.Destroy()
	})
	return fs, client
}

func send(t *testing.T, client *kernel.Process, fs *FileServer, req *proto.Message) *proto.Message {
	t.Helper()
	reply, err := client.Send(req, fs.PID())
	if err != nil {
		t.Fatal(err)
	}
	return reply
}

func TestMkdirAllIdempotent(t *testing.T) {
	fs, _ := startFS(t)
	a, err := fs.MkdirAll("/x/y/z", "o")
	if err != nil {
		t.Fatal(err)
	}
	b, err := fs.MkdirAll("/x/y/z", "o")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("MkdirAll not idempotent: %v vs %v", a, b)
	}
}

func TestMkdirAllThroughFile(t *testing.T) {
	fs, _ := startFS(t)
	if err := fs.WriteFile("/x/file", "o", []byte("data")); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.MkdirAll("/x/file/sub", "o"); !errors.Is(err, proto.ErrNotAContext) {
		t.Fatalf("err = %v", err)
	}
}

func TestWriteFileReplaces(t *testing.T) {
	fs, _ := startFS(t)
	if err := fs.WriteFile("/f", "o", []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/f", "o", []byte("second")); err != nil {
		t.Fatal(err)
	}
	d, err := fs.vol.describe(core.CtxDefault, "f")
	if err != nil || d.Size != 6 {
		t.Fatalf("descriptor = %+v, %v", d, err)
	}
}

func TestWriteFileOverDirectoryFails(t *testing.T) {
	fs, _ := startFS(t)
	if _, err := fs.MkdirAll("/d", "o"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/d", "o", nil); !errors.Is(err, proto.ErrDuplicateName) {
		t.Fatalf("err = %v", err)
	}
}

func TestOpenCreateAndEOF(t *testing.T) {
	fs, client := startFS(t)
	req := &proto.Message{Op: proto.OpCreateInstance}
	proto.SetCSName(req, uint32(core.CtxDefault), "new.txt")
	proto.SetOpenMode(req, proto.ModeRead|proto.ModeWrite|proto.ModeCreate)
	reply := send(t, client, fs, req)
	if reply.Op != proto.ReplyOK {
		t.Fatalf("open reply = %v", reply.Op)
	}
	f := vio.NewFile(client, fs.PID(), proto.GetInstanceInfo(reply))
	if _, err := f.Write([]byte("contents")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	got, err := f.ReadAll()
	if err != nil || string(got) != "contents" {
		t.Fatalf("read %q, %v", got, err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if fs.OpenInstances() != 0 {
		t.Fatal("instance leaked")
	}
}

func TestOpenWithoutCreateFails(t *testing.T) {
	fs, client := startFS(t)
	req := &proto.Message{Op: proto.OpCreateInstance}
	proto.SetCSName(req, uint32(core.CtxDefault), "absent")
	proto.SetOpenMode(req, proto.ModeRead)
	if reply := send(t, client, fs, req); reply.Op != proto.ReplyNotFound {
		t.Fatalf("reply = %v", reply.Op)
	}
}

func TestOpenDirectoryWithoutModeFails(t *testing.T) {
	fs, client := startFS(t)
	if _, err := fs.MkdirAll("/d", "o"); err != nil {
		t.Fatal(err)
	}
	req := &proto.Message{Op: proto.OpCreateInstance}
	proto.SetCSName(req, uint32(core.CtxDefault), "d")
	proto.SetOpenMode(req, proto.ModeRead)
	if reply := send(t, client, fs, req); reply.Op != proto.ReplyModeNotSupported {
		t.Fatalf("reply = %v", reply.Op)
	}
}

func TestTruncateOnOpen(t *testing.T) {
	fs, client := startFS(t)
	if err := fs.WriteFile("/f", "o", []byte("old contents")); err != nil {
		t.Fatal(err)
	}
	req := &proto.Message{Op: proto.OpCreateInstance}
	proto.SetCSName(req, uint32(core.CtxDefault), "f")
	proto.SetOpenMode(req, proto.ModeWrite|proto.ModeTruncate)
	reply := send(t, client, fs, req)
	info := proto.GetInstanceInfo(reply)
	if info.SizeBytes != 0 {
		t.Fatalf("size after truncate = %d", info.SizeBytes)
	}
}

func TestRemoveDirectorySemantics(t *testing.T) {
	fs, client := startFS(t)
	if err := fs.WriteFile("/d/f", "o", []byte("x")); err != nil {
		t.Fatal(err)
	}
	rm := func(name string) proto.Code {
		req := &proto.Message{Op: proto.OpRemoveObject}
		proto.SetCSName(req, uint32(core.CtxDefault), name)
		return send(t, client, fs, req).Op
	}
	if got := rm("d"); got != proto.ReplyNotEmpty {
		t.Fatalf("remove non-empty dir = %v", got)
	}
	if got := rm("d/f"); got != proto.ReplyOK {
		t.Fatalf("remove file = %v", got)
	}
	if got := rm("d"); got != proto.ReplyOK {
		t.Fatalf("remove empty dir = %v", got)
	}
	if got := rm("d"); got != proto.ReplyNotFound {
		t.Fatalf("remove again = %v", got)
	}
}

func TestRenameDuplicateTargetFails(t *testing.T) {
	fs, client := startFS(t)
	if err := fs.WriteFile("/a", "o", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/b", "o", []byte("y")); err != nil {
		t.Fatal(err)
	}
	req := &proto.Message{Op: proto.OpRenameObject}
	proto.SetRenameNames(req, uint32(core.CtxDefault), "a", "b")
	if reply := send(t, client, fs, req); reply.Op != proto.ReplyDuplicateName {
		t.Fatalf("reply = %v", reply.Op)
	}
}

func TestGetContextNamePath(t *testing.T) {
	fs, client := startFS(t)
	ctx, err := fs.MkdirAll("/users/mann/notes", "mann")
	if err != nil {
		t.Fatal(err)
	}
	req := &proto.Message{Op: proto.OpGetContextName}
	req.F[0] = uint32(ctx)
	reply := send(t, client, fs, req)
	if reply.Op != proto.ReplyOK || string(reply.Segment) != "/users/mann/notes" {
		t.Fatalf("path = %q (%v)", reply.Segment, reply.Op)
	}
	// Root names itself "/".
	req2 := &proto.Message{Op: proto.OpGetContextName}
	req2.F[0] = uint32(core.CtxDefault)
	reply = send(t, client, fs, req2)
	if string(reply.Segment) != "/" {
		t.Fatalf("root path = %q", reply.Segment)
	}
	// Unknown context.
	req3 := &proto.Message{Op: proto.OpGetContextName}
	req3.F[0] = 0xDEAD
	if reply = send(t, client, fs, req3); reply.Op != proto.ReplyBadContext {
		t.Fatalf("reply = %v", reply.Op)
	}
}

func TestInverseMappingAfterRename(t *testing.T) {
	// §6: the inverse mapping reflects the object's *current* name, which
	// may not be the name the context was obtained under.
	fs, client := startFS(t)
	ctx, err := fs.MkdirAll("/old/place", "o")
	if err != nil {
		t.Fatal(err)
	}
	req := &proto.Message{Op: proto.OpRenameObject}
	proto.SetRenameNames(req, uint32(core.CtxDefault), "old/place", "old/renamed")
	if reply := send(t, client, fs, req); reply.Op != proto.ReplyOK {
		t.Fatalf("rename = %v", reply.Op)
	}
	nameReq := &proto.Message{Op: proto.OpGetContextName}
	nameReq.F[0] = uint32(ctx)
	reply := send(t, client, fs, nameReq)
	if string(reply.Segment) != "/old/renamed" {
		t.Fatalf("path after rename = %q", reply.Segment)
	}
}

func TestWellKnownContexts(t *testing.T) {
	fs, client := startFS(t)
	if err := fs.WriteFile("/bin/cc", "sys", []byte("img")); err != nil {
		t.Fatal(err)
	}
	if err := fs.SetWellKnown(core.CtxStdPrograms, "/bin"); err != nil {
		t.Fatal(err)
	}
	req := &proto.Message{Op: proto.OpQueryObject}
	proto.SetCSName(req, uint32(core.CtxStdPrograms), "cc")
	reply := send(t, client, fs, req)
	if reply.Op != proto.ReplyOK {
		t.Fatalf("reply = %v", reply.Op)
	}
	// Unconfigured well-known id is a bad context.
	req2 := &proto.Message{Op: proto.OpQueryObject}
	proto.SetCSName(req2, uint32(core.CtxHome), "cc")
	if reply = send(t, client, fs, req2); reply.Op != proto.ReplyBadContext {
		t.Fatalf("reply = %v", reply.Op)
	}
}

func TestDotDotNavigation(t *testing.T) {
	fs, client := startFS(t)
	if err := fs.WriteFile("/a/b/f", "o", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/a/sibling", "o", []byte("y")); err != nil {
		t.Fatal(err)
	}
	ctx, err := fs.MkdirAll("/a/b", "o")
	if err != nil {
		t.Fatal(err)
	}
	req := &proto.Message{Op: proto.OpQueryObject}
	proto.SetCSName(req, uint32(ctx), "../sibling")
	reply := send(t, client, fs, req)
	if reply.Op != proto.ReplyOK {
		t.Fatalf("reply = %v", reply.Op)
	}
	d, _, err := proto.DecodeDescriptor(reply.Segment)
	if err != nil || d.Name != "sibling" {
		t.Fatalf("descriptor = %+v, %v", d, err)
	}
}

func TestAddLinkValidation(t *testing.T) {
	fs, _ := startFS(t)
	target := core.ContextPair{Server: kernel.MakePID(9, 9), Ctx: 1}
	if err := fs.AddLink("/links", "x", target); err != nil {
		t.Fatal(err)
	}
	if err := fs.AddLink("/links", "x", target); !errors.Is(err, proto.ErrDuplicateName) {
		t.Fatalf("err = %v", err)
	}
}

func TestRemoveLinkBinding(t *testing.T) {
	// OpDeleteContextName removes the local binding of a cross-server
	// link without contacting the (here: long dead) remote server; a
	// plain OpRemoveObject on the same name follows the §5.4 forwarding
	// rule and fails on the dead target.
	fs, client := startFS(t)
	target := core.ContextPair{Server: kernel.MakePID(9, 9), Ctx: 1}
	if err := fs.AddLink("/", "remote", target); err != nil {
		t.Fatal(err)
	}
	rm := &proto.Message{Op: proto.OpRemoveObject}
	proto.SetCSName(rm, uint32(core.CtxDefault), "remote")
	if _, err := client.Send(rm, fs.PID()); !errors.Is(err, kernel.ErrNonexistentProcess) {
		t.Fatalf("remove-through-link err = %v", err)
	}

	del := &proto.Message{Op: proto.OpDeleteContextName}
	proto.SetCSName(del, uint32(core.CtxDefault), "remote")
	if reply := send(t, client, fs, del); reply.Op != proto.ReplyOK {
		t.Fatalf("delete binding reply = %v", reply.Op)
	}
	q := &proto.Message{Op: proto.OpQueryObject}
	proto.SetCSName(q, uint32(core.CtxDefault), "remote")
	if reply := send(t, client, fs, q); reply.Op != proto.ReplyNotFound {
		t.Fatalf("query after unlink = %v", reply.Op)
	}
}

func TestLoadProgramMissingFile(t *testing.T) {
	fs, client := startFS(t)
	req := &proto.Message{Op: proto.OpLoadProgram}
	proto.SetCSName(req, uint32(core.CtxDefault), "ghost")
	buf := make([]byte, 16)
	reply, err := client.SendMove(req, fs.PID(), nil, buf)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Op != proto.ReplyNotFound {
		t.Fatalf("reply = %v", reply.Op)
	}
}

func TestReadChargesDiskTime(t *testing.T) {
	fs, client := startFS(t)
	if err := fs.WriteFile("/f", "o", make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
	req := &proto.Message{Op: proto.OpCreateInstance}
	proto.SetCSName(req, uint32(core.CtxDefault), "f")
	proto.SetOpenMode(req, proto.ModeRead)
	reply := send(t, client, fs, req)
	f := vio.NewFile(client, fs.PID(), proto.GetInstanceInfo(reply))
	start := client.Now()
	if _, err := f.ReadBlock(0); err != nil {
		t.Fatal(err)
	}
	elapsed := client.Now() - start
	if elapsed < 15*time.Millisecond {
		t.Fatalf("first page read cost %v, must include the 15 ms disk fetch", elapsed)
	}
}

func TestWriteIsWriteBehind(t *testing.T) {
	fs, client := startFS(t)
	if err := fs.WriteFile("/f", "o", nil); err != nil {
		t.Fatal(err)
	}
	req := &proto.Message{Op: proto.OpCreateInstance}
	proto.SetCSName(req, uint32(core.CtxDefault), "f")
	proto.SetOpenMode(req, proto.ModeWrite)
	reply := send(t, client, fs, req)
	f := vio.NewFile(client, fs.PID(), proto.GetInstanceInfo(reply))
	start := client.Now()
	if _, err := f.Write(make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
	elapsed := client.Now() - start
	if elapsed > 10*time.Millisecond {
		t.Fatalf("write cost %v; write-behind must not wait for the disk", elapsed)
	}
}

func TestOpenByUIDAndRemoveByUID(t *testing.T) {
	fs, client := startFS(t)
	if err := fs.WriteFile("/f", "o", []byte("uid test")); err != nil {
		t.Fatal(err)
	}
	q := &proto.Message{Op: proto.OpQueryObject}
	proto.SetCSName(q, uint32(core.CtxDefault), "f")
	d, _, err := proto.DecodeDescriptor(send(t, client, fs, q).Segment)
	if err != nil {
		t.Fatal(err)
	}

	open := &proto.Message{Op: proto.OpOpenByUID}
	proto.SetOpenMode(open, proto.ModeRead)
	open.F[3] = d.ObjectID
	reply := send(t, client, fs, open)
	if reply.Op != proto.ReplyOK {
		t.Fatalf("open by uid = %v", reply.Op)
	}
	f := vio.NewFile(client, fs.PID(), proto.GetInstanceInfo(reply))
	got, err := f.ReadAll()
	if err != nil || string(got) != "uid test" {
		t.Fatalf("read %q, %v", got, err)
	}

	rm := &proto.Message{Op: proto.OpRemoveByUID}
	rm.F[3] = d.ObjectID
	if reply := send(t, client, fs, rm); reply.Op != proto.ReplyOK {
		t.Fatalf("remove by uid = %v", reply.Op)
	}
	if reply := send(t, client, fs, open.Clone()); reply.Op != proto.ReplyNotFound {
		t.Fatalf("open after remove = %v", reply.Op)
	}
	// The name is gone too (name lives with the object).
	if reply := send(t, client, fs, q.Clone()); reply.Op != proto.ReplyNotFound {
		t.Fatalf("query after remove = %v", reply.Op)
	}
}

func TestVolumePropertyWriteThenRead(t *testing.T) {
	// Property: WriteFile then protocol read returns the same bytes, for
	// arbitrary content and path shapes.
	fs, client := startFS(t)
	n := 0
	f := func(content []byte, depth uint8) bool {
		n++
		path := "/p"
		for i := 0; i < int(depth%4); i++ {
			path += fmt.Sprintf("/d%d", i)
		}
		path += fmt.Sprintf("/file%d", n)
		if err := fs.WriteFile(path, "o", content); err != nil {
			return false
		}
		req := &proto.Message{Op: proto.OpCreateInstance}
		proto.SetCSName(req, uint32(core.CtxDefault), strings.TrimPrefix(path, "/"))
		proto.SetOpenMode(req, proto.ModeRead)
		reply, err := client.Send(req, fs.PID())
		if err != nil || reply.Op != proto.ReplyOK {
			return false
		}
		file := vio.NewFile(client, fs.PID(), proto.GetInstanceInfo(reply))
		got, err := file.ReadAll()
		if err != nil {
			return false
		}
		if err := file.Close(); err != nil {
			return false
		}
		return string(got) == string(content)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestBufferCacheServesRepeatedReads(t *testing.T) {
	fs, client := startFS(t)
	if err := fs.WriteFile("/f", "o", make([]byte, 1024)); err != nil {
		t.Fatal(err)
	}
	open := func() *vio.File {
		req := &proto.Message{Op: proto.OpCreateInstance}
		proto.SetCSName(req, uint32(core.CtxDefault), "f")
		proto.SetOpenMode(req, proto.ModeRead)
		reply := send(t, client, fs, req)
		return vio.NewFile(client, fs.PID(), proto.GetInstanceInfo(reply))
	}
	// First read: disk time.
	f1 := open()
	start := client.Now()
	if _, err := f1.ReadAll(); err != nil {
		t.Fatal(err)
	}
	cold := client.Now() - start
	if err := f1.Close(); err != nil {
		t.Fatal(err)
	}
	// Second read through a fresh instance: buffer cache, no disk time.
	f2 := open()
	start = client.Now()
	if _, err := f2.ReadAll(); err != nil {
		t.Fatal(err)
	}
	warm := client.Now() - start
	if err := f2.Close(); err != nil {
		t.Fatal(err)
	}
	if cold < 15*time.Millisecond {
		t.Fatalf("cold read %v must include disk time", cold)
	}
	// The warm read is pure IPC: at least one full disk fetch cheaper.
	if warm > cold-14*time.Millisecond {
		t.Fatalf("warm read %v vs cold %v: buffer cache not effective", warm, cold)
	}
	if fs.CachedPages() == 0 {
		t.Fatal("cache empty after reads")
	}
}

func TestBufferCacheInvalidatedByTruncate(t *testing.T) {
	fs, client := startFS(t)
	if err := fs.WriteFile("/f", "o", make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
	req := &proto.Message{Op: proto.OpCreateInstance}
	proto.SetCSName(req, uint32(core.CtxDefault), "f")
	proto.SetOpenMode(req, proto.ModeRead)
	reply := send(t, client, fs, req)
	f := vio.NewFile(client, fs.PID(), proto.GetInstanceInfo(reply))
	if _, err := f.ReadAll(); err != nil {
		t.Fatal(err)
	}
	if fs.CachedPages() == 0 {
		t.Fatal("no pages cached")
	}
	if err := fs.WriteFile("/f", "o", make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
	// Re-read costs disk time again after the truncate invalidation...
	req2 := &proto.Message{Op: proto.OpCreateInstance}
	proto.SetCSName(req2, uint32(core.CtxDefault), "f")
	proto.SetOpenMode(req2, proto.ModeRead)
	reply = send(t, client, fs, req2)
	f2 := vio.NewFile(client, fs.PID(), proto.GetInstanceInfo(reply))
	start := client.Now()
	if _, err := f2.ReadAll(); err != nil {
		t.Fatal(err)
	}
	if client.Now()-start < 15*time.Millisecond {
		t.Fatal("read after truncate should fetch from disk")
	}
}

func TestBufferCacheLRUEviction(t *testing.T) {
	c := newBlockCache(2)
	c.insert(1, 0)
	c.insert(1, 1)
	c.insert(1, 2) // evicts (1,0)
	if c.contains(1, 0) {
		t.Fatal("LRU victim still cached")
	}
	if !c.contains(1, 1) || !c.contains(1, 2) {
		t.Fatal("recent pages missing")
	}
	// Touch (1,1) so (1,2) becomes the LRU victim of the next insert.
	if !c.contains(1, 1) {
		t.Fatal("page lost")
	}
	c.insert(1, 3)
	if !c.contains(1, 1) || c.contains(1, 2) {
		t.Fatal("LRU order not respected")
	}
	c.invalidate(1)
	if c.size() != 0 {
		t.Fatal("invalidate left pages behind")
	}
}

func TestPermissionEnforcement(t *testing.T) {
	// §5.5: the access-control bits in the description record govern
	// access; they are changed through the uniform modify operation.
	fs, client := startFS(t)
	if err := fs.WriteFile("/locked", "o", []byte("contents")); err != nil {
		t.Fatal(err)
	}
	// Drop write permission via the protocol's modify operation.
	rec := proto.Descriptor{Tag: proto.TagFile, Perms: proto.PermRead, Owner: "o"}
	mod := &proto.Message{Op: proto.OpModifyObject}
	proto.SetCSName(mod, uint32(core.CtxDefault), "locked")
	mod.Segment = rec.AppendEncoded(mod.Segment)
	if reply := send(t, client, fs, mod); reply.Op != proto.ReplyOK {
		t.Fatalf("modify = %v", reply.Op)
	}

	openWith := func(mode uint32) proto.Code {
		req := &proto.Message{Op: proto.OpCreateInstance}
		proto.SetCSName(req, uint32(core.CtxDefault), "locked")
		proto.SetOpenMode(req, mode)
		return send(t, client, fs, req).Op
	}
	if got := openWith(proto.ModeRead); got != proto.ReplyOK {
		t.Fatalf("read open = %v", got)
	}
	if got := openWith(proto.ModeWrite); got != proto.ReplyNoPermission {
		t.Fatalf("write open = %v", got)
	}
	if got := openWith(proto.ModeRead | proto.ModeTruncate); got != proto.ReplyNoPermission {
		t.Fatalf("truncate open = %v", got)
	}
	// The refused truncate must not have emptied the file.
	d, err := fs.Describe("locked")
	if err != nil || d.Size != uint32(len("contents")) {
		t.Fatalf("size after refused truncate = %+v, %v", d, err)
	}
	// Restore write permission; write works again.
	rec.Perms = proto.PermRead | proto.PermWrite
	mod2 := &proto.Message{Op: proto.OpModifyObject}
	proto.SetCSName(mod2, uint32(core.CtxDefault), "locked")
	mod2.Segment = rec.AppendEncoded(mod2.Segment)
	if reply := send(t, client, fs, mod2); reply.Op != proto.ReplyOK {
		t.Fatalf("modify back = %v", reply.Op)
	}
	if got := openWith(proto.ModeWrite); got != proto.ReplyOK {
		t.Fatalf("write open after restore = %v", got)
	}
}
