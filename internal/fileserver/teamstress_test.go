package fileserver

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/proto"
	"repro/internal/vio"
	"repro/internal/vtime"
)

// TestTeamStressFileServer hammers one file-server team from many
// concurrent client processes; with -race this exercises the volume,
// buffer cache, and instance locking under real parallelism.
func TestTeamStressFileServer(t *testing.T) {
	k := kernel.New(netsim.New(vtime.DefaultModel(), 1))
	host := k.NewHost("fs")
	fs, err := Start(host, "stress", WithTeam(4))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fs.Proc().Destroy() })

	const clients, trials = 6, 8
	for i := 0; i < clients; i++ {
		path := fmt.Sprintf("/u%d/data.txt", i)
		if err := fs.WriteFile(path, "system", []byte(fmt.Sprintf("client %d payload", i))); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		proc, err := k.NewHost(fmt.Sprintf("ws%d", i)).NewProcess("client")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(proc.Destroy)
		wg.Add(1)
		go func(i int, proc *kernel.Process) {
			defer wg.Done()
			want := fmt.Sprintf("client %d payload", i)
			for j := 0; j < trials; j++ {
				q := &proto.Message{Op: proto.OpQueryObject}
				proto.SetCSName(q, uint32(core.CtxDefault), fmt.Sprintf("u%d/data.txt", i))
				reply, err := proc.Send(q, fs.PID())
				if err != nil {
					errs <- fmt.Errorf("client %d query %d: %w", i, j, err)
					return
				}
				if reply.Op != proto.ReplyOK {
					errs <- fmt.Errorf("client %d query %d: reply %v", i, j, reply.Op)
					return
				}
				open := &proto.Message{Op: proto.OpCreateInstance}
				proto.SetCSName(open, uint32(core.CtxDefault), fmt.Sprintf("u%d/data.txt", i))
				proto.SetOpenMode(open, proto.ModeRead)
				reply, err = proc.Send(open, fs.PID())
				if err != nil || reply.Op != proto.ReplyOK {
					errs <- fmt.Errorf("client %d open %d: %v, %v", i, j, reply, err)
					return
				}
				f := vio.NewFile(proc, fs.PID(), proto.GetInstanceInfo(reply))
				got, err := f.ReadAll()
				if err != nil || string(got) != want {
					errs <- fmt.Errorf("client %d read %d: %q, %v", i, j, got, err)
					return
				}
				if err := f.Close(); err != nil {
					errs <- fmt.Errorf("client %d close %d: %w", i, j, err)
					return
				}
			}
		}(i, proc)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if stats := fs.srv.Stats(); stats.Requests == 0 || stats.Handoffs == 0 {
		t.Fatalf("team stats = %+v, want requests and handoffs", stats)
	}
}
