package fileserver

// Replication adapter (ISSUE 6; PROTOCOL.md §11): a file server becomes a
// replication-group member by fronting it with a ReplicaService. The front
// is the pid clients talk to (the rig registers it as the storage
// service); the member-local FileServer behind it keeps its normal serving
// team and I/O path. The front routes on leadership:
//
//   - name-space mutations (remove, rename, link, add/delete context
//     name, modify) are proposed through the group log as wrapped
//     messages and applied — via the local server's ordinary handler — on
//     every member, so all volumes hold the same name-space structure and
//     file contents;
//   - context mapping is proxied through the local server with the reply's
//     server pid rewritten to the front, so cached context pairs keep
//     naming the group;
//   - everything else (opens, instance I/O setup, queries) is forwarded to
//     the local server on the leader and redirected with a leader hint on
//     followers.
//
// Opens with ModeCreate/ModeTruncate mutate the leader's volume without a
// log entry; a rejoining member picks them up from the leader's snapshot
// (§11.5 notes the tradeoff). Descriptor mtimes are server-local virtual
// times and may differ across members; the replicated invariant is the
// name-space structure and file bytes, which the snapshot codec encodes
// canonically (nodes and directory entries in sorted order).

import (
	"encoding/binary"
	"errors"
	"sort"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/proto"
	"repro/internal/replica"
	"repro/internal/vtime"
)

// --- uvarint encoding helpers (snapshot and command codecs) ---

type enc struct{ b []byte }

func (e *enc) u64(x uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], x)
	e.b = append(e.b, tmp[:n]...)
}

func (e *enc) str(s string) {
	e.u64(uint64(len(s)))
	e.b = append(e.b, s...)
}

func (e *enc) bytes(p []byte) {
	e.u64(uint64(len(p)))
	e.b = append(e.b, p...)
}

type dec struct {
	b   []byte
	bad bool
}

func (d *dec) u64() uint64 {
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.bad = true
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) take() []byte {
	n := d.u64()
	if d.bad || uint64(len(d.b)) < n {
		d.bad = true
		return nil
	}
	out := d.b[:n]
	d.b = d.b[n:]
	return out
}

func (d *dec) str() string { return string(d.take()) }

// --- volume snapshot codec ---

// encode serializes the volume canonically: nodes in i-node order,
// directory entries and well-known aliases in sorted order. Two volumes
// with the same name-space structure and file contents encode to the same
// bytes (mtimes are carried but server-local; see the package note above).
func (v *volume) encode() []byte {
	v.mu.Lock()
	defer v.mu.Unlock()
	e := &enc{}
	ids := make([]ino, 0, len(v.nodes))
	for id := range v.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	e.u64(uint64(len(ids)))
	for _, id := range ids {
		n := v.nodes[id]
		e.u64(uint64(n.id))
		e.u64(uint64(n.kind))
		e.u64(uint64(n.parent))
		e.str(n.name)
		e.str(n.owner)
		e.u64(uint64(n.perms))
		e.u64(uint64(n.mtime))
		e.u64(uint64(n.nlink))
		if n.kind == kindDir {
			names := make([]string, 0, len(n.names))
			for nm := range n.names {
				names = append(names, nm)
			}
			sort.Strings(names)
			e.u64(uint64(len(names)))
			for _, nm := range names {
				de := n.names[nm]
				e.str(nm)
				if de.remote != nil {
					e.u64(1)
					e.u64(uint64(de.remote.Server))
					e.u64(uint64(de.remote.Ctx))
				} else {
					e.u64(0)
					e.u64(uint64(de.child))
				}
			}
		} else {
			e.bytes(n.data)
		}
	}
	wks := make([]core.ContextID, 0, len(v.wellKnown))
	for ctx := range v.wellKnown {
		wks = append(wks, ctx)
	}
	sort.Slice(wks, func(i, j int) bool { return wks[i] < wks[j] })
	e.u64(uint64(len(wks)))
	for _, ctx := range wks {
		e.u64(uint64(ctx))
		e.u64(uint64(v.wellKnown[ctx]))
	}
	e.u64(uint64(v.next))
	return e.b
}

// decodeVolume parses an encoded volume image.
func decodeVolume(data []byte) (map[ino]*node, ino, map[core.ContextID]ino, error) {
	d := &dec{b: data}
	cnt := d.u64()
	nodes := make(map[ino]*node, cnt)
	for i := uint64(0); i < cnt && !d.bad; i++ {
		n := &node{}
		n.id = ino(d.u64())
		n.kind = nodeKind(d.u64())
		n.parent = ino(d.u64())
		n.name = d.str()
		n.owner = d.str()
		n.perms = uint16(d.u64())
		n.mtime = vtime.Time(d.u64())
		n.nlink = int(d.u64())
		if n.kind == kindDir {
			m := d.u64()
			n.names = make(map[string]dirent, m)
			for j := uint64(0); j < m && !d.bad; j++ {
				nm := d.str()
				if d.u64() == 1 {
					pair := core.ContextPair{}
					pair.Server = kernel.PID(d.u64())
					pair.Ctx = core.ContextID(d.u64())
					n.names[nm] = dirent{remote: &pair}
				} else {
					n.names[nm] = dirent{child: ino(d.u64())}
				}
			}
		} else {
			n.data = append([]byte(nil), d.take()...)
		}
		nodes[n.id] = n
	}
	wkCnt := d.u64()
	wk := make(map[core.ContextID]ino, wkCnt)
	for i := uint64(0); i < wkCnt && !d.bad; i++ {
		ctx := core.ContextID(d.u64())
		wk[ctx] = ino(d.u64())
	}
	next := ino(d.u64())
	if d.bad || len(d.b) != 0 {
		return nil, 0, nil, errors.New("fileserver: corrupt volume snapshot")
	}
	return nodes, next, wk, nil
}

// restoreVolume replaces the volume's state with a decoded snapshot and
// drops every buffered page (the cache describes the old contents).
func (fs *FileServer) restoreVolume(data []byte) error {
	nodes, next, wk, err := decodeVolume(data)
	if err != nil {
		return err
	}
	v := fs.vol
	v.mu.Lock()
	v.nodes, v.next, v.wellKnown = nodes, next, wk
	v.mu.Unlock()
	fs.cache.clear()
	return nil
}

// --- replicated command codec ---

// Command kinds. cmdMessage wraps a client mutation verbatim; the rest are
// the boot-seeding helpers, so a rig can seed a group through the log.
const (
	cmdMessage byte = iota + 1
	cmdMkdirAll
	cmdWriteFile
	cmdWellKnown
	cmdAddLink
)

// CmdMessage wraps a protocol mutation as a log command; applying it runs
// the message through the member-local server's ordinary handler.
func CmdMessage(m *proto.Message) ([]byte, error) {
	buf, err := m.Marshal()
	if err != nil {
		return nil, err
	}
	return append([]byte{cmdMessage}, buf...), nil
}

// CmdMkdirAll builds the log command for MkdirAll. The apply reply carries
// the created context id in F[2].
func CmdMkdirAll(path, owner string) []byte {
	e := &enc{b: []byte{cmdMkdirAll}}
	e.str(path)
	e.str(owner)
	return e.b
}

// CmdWriteFile builds the log command for WriteFile (create or replace).
func CmdWriteFile(path, owner string, contents []byte) []byte {
	e := &enc{b: []byte{cmdWriteFile}}
	e.str(path)
	e.str(owner)
	e.bytes(contents)
	return e.b
}

// CmdSetWellKnown builds the log command for SetWellKnown.
func CmdSetWellKnown(ctx core.ContextID, path string) []byte {
	e := &enc{b: []byte{cmdWellKnown}}
	e.u64(uint64(ctx))
	e.str(path)
	return e.b
}

// CmdAddLink builds the log command for AddLink.
func CmdAddLink(dirPath, name string, target core.ContextPair) []byte {
	e := &enc{b: []byte{cmdAddLink}}
	e.str(dirPath)
	e.str(name)
	e.u64(uint64(target.Server))
	e.u64(uint64(target.Ctx))
	return e.b
}

// --- the replicated front ---

// ReplicaService fronts a member-local FileServer as a replication-group
// state machine (see the package note for the routing table).
type ReplicaService struct {
	fs *FileServer
}

// NewReplicaService builds the front over the member-local server.
func NewReplicaService(fs *FileServer) *ReplicaService {
	return &ReplicaService{fs: fs}
}

// FileServer returns the member-local server behind the front.
func (rs *ReplicaService) FileServer() *FileServer { return rs.fs }

// replicatedMutation reports whether op changes the name space and so must
// go through the group log.
func replicatedMutation(op proto.Code) bool {
	switch op {
	case proto.OpRemoveObject, proto.OpRenameObject, proto.OpLinkObject,
		proto.OpAddContextName, proto.OpDeleteContextName, proto.OpModifyObject:
		return true
	}
	return false
}

// forwardsElsewhere reports whether the mutation's name resolves into
// another server: such a mutation belongs to that server's state, not this
// group's log, so the front hands it to the local server to forward on
// (§5.4) instead of replicating it.
func (rs *ReplicaService) forwardsElsewhere(p *kernel.Process, msg *proto.Message) bool {
	name, _, err := proto.CSName(msg)
	if err != nil {
		return false
	}
	interp := core.Interpret
	if msg.Op == proto.OpDeleteContextName {
		interp = core.InterpretBinding
	}
	_, fwd, err := interp(rs.fs.vol, p, name, proto.CSNameIndex(msg), core.ContextID(proto.CSNameContext(msg)))
	return err == nil && fwd != nil
}

// Serve implements replica.Service.
func (rs *ReplicaService) Serve(p *kernel.Process, r *replica.Replica, msg *proto.Message, from kernel.PID) {
	if !r.Leading() {
		// A follower keeps the service available by passing the whole
		// transaction to the live leader's front (§5.4 forwarding); during
		// a leaderless window the client gets the redirect and retries.
		if lead := r.LeaderHint(); lead != kernel.NilPID && lead != p.PID() {
			if err := p.Forward(msg, from, lead); err == nil {
				return
			}
		}
		_ = p.Reply(r.NotLeaderReply(), from)
		return
	}
	switch {
	case msg.Op == proto.OpMapContext:
		rs.proxyMapContext(p, msg, from)
	case replicatedMutation(msg.Op):
		if rs.forwardsElsewhere(p, msg) {
			rs.forwardLocal(p, msg, from)
			return
		}
		cmd, err := CmdMessage(msg)
		if err != nil {
			_ = p.Reply(core.ErrorReplyMsg(err), from)
			return
		}
		rep, err := r.Propose(p, cmd)
		switch {
		case errors.Is(err, proto.ErrNotLeader):
			_ = p.Reply(r.NotLeaderReply(), from)
		case err != nil:
			_ = p.Reply(core.ErrorReplyMsg(err), from)
		default:
			_ = p.Reply(rep, from)
		}
	default:
		rs.forwardLocal(p, msg, from)
	}
}

// forwardLocal hands the pending transaction to the member-local server.
func (rs *ReplicaService) forwardLocal(p *kernel.Process, msg *proto.Message, from kernel.PID) {
	if err := p.Forward(msg, from, rs.fs.PID()); err != nil {
		_ = p.Reply(core.ErrorReplyMsg(err), from)
	}
}

// proxyMapContext resolves a context mapping through the local server and
// rewrites a pair naming the local server to name the front instead, so
// clients cache the replicated service, not one member (§5.3).
func (rs *ReplicaService) proxyMapContext(p *kernel.Process, msg *proto.Message, from kernel.PID) {
	rep, err := p.Send(msg, rs.fs.PID())
	if err != nil {
		_ = p.Reply(core.ErrorReplyMsg(err), from)
		return
	}
	if rep.Op == proto.ReplyOK {
		if pid, ctx := proto.GetMapContextReply(rep); pid == uint32(rs.fs.PID()) {
			proto.SetMapContextReply(rep, uint32(p.PID()), ctx)
		}
	}
	_ = p.Reply(rep, from)
}

// Apply implements replica.Service: run one committed command against the
// member-local server.
func (rs *ReplicaService) Apply(p *kernel.Process, cmd []byte) *proto.Message {
	if len(cmd) == 0 {
		return core.ErrorReplyMsg(proto.ErrBadArgs)
	}
	body := cmd[1:]
	switch cmd[0] {
	case cmdMessage:
		m, err := proto.Unmarshal(body)
		if err != nil {
			return core.ErrorReplyMsg(err)
		}
		rep, err := p.Send(m, rs.fs.PID())
		if err != nil {
			return core.ErrorReplyMsg(err)
		}
		return rep
	case cmdMkdirAll:
		d := &dec{b: body}
		path, owner := d.str(), d.str()
		if d.bad {
			return core.ErrorReplyMsg(proto.ErrBadArgs)
		}
		ctx, err := rs.fs.MkdirAll(path, owner)
		if err != nil {
			return core.ErrorReplyMsg(err)
		}
		rep := core.OkReply()
		rep.F[2] = uint32(ctx)
		return rep
	case cmdWriteFile:
		d := &dec{b: body}
		path, owner, contents := d.str(), d.str(), d.take()
		if d.bad {
			return core.ErrorReplyMsg(proto.ErrBadArgs)
		}
		if err := rs.fs.WriteFile(path, owner, contents); err != nil {
			return core.ErrorReplyMsg(err)
		}
		return core.OkReply()
	case cmdWellKnown:
		d := &dec{b: body}
		ctx := core.ContextID(d.u64())
		path := d.str()
		if d.bad {
			return core.ErrorReplyMsg(proto.ErrBadArgs)
		}
		if err := rs.fs.SetWellKnown(ctx, path); err != nil {
			return core.ErrorReplyMsg(err)
		}
		return core.OkReply()
	case cmdAddLink:
		d := &dec{b: body}
		dirPath, name := d.str(), d.str()
		target := core.ContextPair{}
		target.Server = kernel.PID(d.u64())
		target.Ctx = core.ContextID(d.u64())
		if d.bad {
			return core.ErrorReplyMsg(proto.ErrBadArgs)
		}
		if err := rs.fs.AddLink(dirPath, name, target); err != nil {
			return core.ErrorReplyMsg(err)
		}
		return core.OkReply()
	}
	return core.ErrorReplyMsg(proto.ErrBadArgs)
}

// Snapshot implements replica.Service.
func (rs *ReplicaService) Snapshot() []byte { return rs.fs.vol.encode() }

// Restore implements replica.Service.
func (rs *ReplicaService) Restore(p *kernel.Process, data []byte) error {
	return rs.fs.restoreVolume(data)
}

var _ replica.Service = (*ReplicaService)(nil)
