package fileserver

import (
	"testing"

	"repro/internal/core"
	"repro/internal/proto"
	"repro/internal/trace"
	"repro/internal/trace/tracetest"
	"repro/internal/vio"
)

// TestTraceInvariantsFileServer drives query/open/read/close against a
// file-server team in a traced domain and runs the invariant checker:
// every send terminates in exactly one reply, the receptionist's
// handoffs and forwards appear as spans, and no span leaks.
func TestTraceInvariantsFileServer(t *testing.T) {
	d := tracetest.New()
	fs, err := Start(d.K.NewHost("fs"), "traced", WithTeam(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/u/data.txt", "system", []byte("traced payload")); err != nil {
		t.Fatal(err)
	}
	proc, err := d.K.NewHost("ws").NewProcess("client")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(proc.Destroy)

	const trials = 3
	for j := 0; j < trials; j++ {
		q := &proto.Message{Op: proto.OpQueryObject}
		proto.SetCSName(q, uint32(core.CtxDefault), "u/data.txt")
		if reply, err := proc.Send(q, fs.PID()); err != nil || reply.Op != proto.ReplyOK {
			t.Fatalf("query %d: %v, %v", j, reply, err)
		}
		open := &proto.Message{Op: proto.OpCreateInstance}
		proto.SetCSName(open, uint32(core.CtxDefault), "u/data.txt")
		proto.SetOpenMode(open, proto.ModeRead)
		reply, err := proc.Send(open, fs.PID())
		if err != nil || reply.Op != proto.ReplyOK {
			t.Fatalf("open %d: %v, %v", j, reply, err)
		}
		f := vio.NewFile(proc, fs.PID(), proto.GetInstanceInfo(reply))
		if got, err := f.ReadAll(); err != nil || string(got) != "traced payload" {
			t.Fatalf("read %d: %q, %v", j, got, err)
		}
		if err := f.Close(); err != nil {
			t.Fatalf("close %d: %v", j, err)
		}
	}

	spans := d.Check(t)
	// Every transaction crosses the team: receptionist handoff → forward
	// → worker serve → reply, each hop with a wire span.
	tracetest.Require(t, spans, trace.KindSend, trials*3)
	tracetest.Require(t, spans, trace.KindServe, trials*3)
	tracetest.Require(t, spans, trace.KindReply, trials*3)
	tracetest.Require(t, spans, trace.KindHandoff, trials)
	tracetest.Require(t, spans, trace.KindForward, trials)
	tracetest.Require(t, spans, trace.KindWire, trials*6)
	// Handoffs parent under the receptionist's serve span and their
	// forward hop follows as a sibling child of the handoff's parent or
	// the handoff itself; check every forward descends from a handoff or
	// a serve span.
	byID := make(map[trace.SpanID]trace.Span, len(spans))
	for _, s := range spans {
		byID[s.ID] = s
	}
	for _, s := range spans {
		if s.Kind != trace.KindForward {
			continue
		}
		p, ok := byID[s.Parent]
		if !ok || (p.Kind != trace.KindHandoff && p.Kind != trace.KindServe) {
			t.Fatalf("forward span %d parents under %v, want handoff or serve", s.ID, p.Kind)
		}
	}
}
