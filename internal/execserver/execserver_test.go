package execserver

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fileserver"
	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/proto"
	"repro/internal/vio"
	"repro/internal/vtime"
)

func startRig(t *testing.T) (*Server, *kernel.Process, *fileserver.FileServer) {
	t.Helper()
	k := kernel.New(netsim.New(vtime.DefaultModel(), 1))
	fsHost := k.NewHost("fs")
	fs, err := fileserver.Start(fsHost, "fs")
	if err != nil {
		t.Fatal(err)
	}
	binCtx, err := fs.MkdirAll("/bin", "system")
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/bin/editor", "system", make([]byte, 8192)); err != nil {
		t.Fatal(err)
	}

	wsHost := k.NewHost("ws")
	s, err := Start(wsHost, core.ContextPair{Server: fs.PID(), Ctx: binCtx})
	if err != nil {
		t.Fatal(err)
	}
	client, err := wsHost.NewProcess("client")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Destroy() })
	return s, client, fs
}

func exec(t *testing.T, client *kernel.Process, s *Server, image string) *proto.Message {
	t.Helper()
	req := &proto.Message{Op: proto.OpExecProgram}
	proto.SetCSName(req, uint32(core.CtxDefault), image)
	reply, err := client.Send(req, s.PID())
	if err != nil {
		t.Fatal(err)
	}
	return reply
}

func TestExecLoadsAndRuns(t *testing.T) {
	s, client, _ := startRig(t)
	ran := make(chan struct{})
	s.RegisterBody("editor", func(p *kernel.Process) {
		close(ran)
		<-p.Done()
	})
	reply := exec(t, client, s, "editor")
	if reply.Op != proto.ReplyOK {
		t.Fatalf("exec = %v", reply.Op)
	}
	if !strings.HasPrefix(string(reply.Segment), "editor.") {
		t.Fatalf("program name = %q", reply.Segment)
	}
	select {
	case <-ran:
	case <-time.After(2 * time.Second):
		t.Fatal("program never ran")
	}
	if s.Running() != 1 {
		t.Fatalf("running = %d", s.Running())
	}
}

func TestExecUnknownImage(t *testing.T) {
	s, client, _ := startRig(t)
	reply := exec(t, client, s, "ghost")
	if reply.Op == proto.ReplyOK {
		t.Fatal("exec of missing image should fail")
	}
}

func TestExecChargesLoadTime(t *testing.T) {
	// Loading the image from the file server costs MoveTo transfer time.
	s, client, _ := startRig(t)
	before := client.Now()
	if reply := exec(t, client, s, "editor"); reply.Op != proto.ReplyOK {
		t.Fatalf("exec = %v", reply.Op)
	}
	model := client.Kernel().Model()
	if elapsed := client.Now() - before; elapsed < model.RemoteHopFloor(8192) {
		t.Fatalf("exec cost %v, must include the 8 KB image transfer", elapsed)
	}
}

func TestKillByRemoveObject(t *testing.T) {
	s, client, _ := startRig(t)
	reply := exec(t, client, s, "editor")
	name := string(reply.Segment)
	rm := &proto.Message{Op: proto.OpRemoveObject}
	proto.SetCSName(rm, uint32(core.CtxDefault), name)
	reply2, err := client.Send(rm, s.PID())
	if err != nil || reply2.Op != proto.ReplyOK {
		t.Fatalf("remove = %v, %v", reply2, err)
	}
	if s.Running() != 0 {
		t.Fatal("program survived removal")
	}
	// The program's process is really gone.
	pid := kernel.PID(reply.F[1])
	if _, err := client.Send(&proto.Message{Op: proto.OpEcho}, pid); err == nil {
		t.Fatal("program process should be destroyed")
	}
}

func TestKillByProgramID(t *testing.T) {
	s, client, _ := startRig(t)
	reply := exec(t, client, s, "editor")
	kill := &proto.Message{Op: proto.OpKillProgram}
	kill.F[0] = reply.F[0]
	reply2, err := client.Send(kill, s.PID())
	if err != nil || reply2.Op != proto.ReplyOK {
		t.Fatalf("kill = %v, %v", reply2, err)
	}
	if s.Running() != 0 {
		t.Fatal("program survived kill")
	}
	// Killing again: not found.
	reply2, err = client.Send(kill.Clone(), s.PID())
	if err != nil || reply2.Op != proto.ReplyNotFound {
		t.Fatalf("second kill = %v, %v", reply2, err)
	}
}

func TestProgramsInExecutionContext(t *testing.T) {
	s, client, _ := startRig(t)
	exec(t, client, s, "editor")
	exec(t, client, s, "editor")

	req := &proto.Message{Op: proto.OpCreateInstance}
	proto.SetCSName(req, uint32(core.CtxDefault), "")
	proto.SetOpenMode(req, proto.ModeRead|proto.ModeDirectory)
	reply, err := client.Send(req, s.PID())
	if err != nil || reply.Op != proto.ReplyOK {
		t.Fatalf("open dir = %v, %v", reply, err)
	}
	f := vio.NewFile(client, s.PID(), proto.GetInstanceInfo(reply))
	raw, err := f.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	records, err := proto.DecodeDescriptors(raw)
	if err != nil || len(records) != 2 {
		t.Fatalf("records = %v, %v", records, err)
	}
	for _, r := range records {
		if r.Tag != proto.TagProgram || r.Owner != "editor" {
			t.Fatalf("record = %+v", r)
		}
	}
	// Distinct instance names derived from distinct ids.
	if records[0].Name == records[1].Name {
		t.Fatal("program names must be unique")
	}
}

func TestQueryProgram(t *testing.T) {
	s, client, _ := startRig(t)
	reply := exec(t, client, s, "editor")
	name := string(reply.Segment)
	q := &proto.Message{Op: proto.OpQueryObject}
	proto.SetCSName(q, uint32(core.CtxDefault), name)
	reply2, err := client.Send(q, s.PID())
	if err != nil || reply2.Op != proto.ReplyOK {
		t.Fatalf("query = %v, %v", reply2, err)
	}
	d, _, err := proto.DecodeDescriptor(reply2.Segment)
	if err != nil || d.Tag != proto.TagProgram || d.Size != 8192 {
		t.Fatalf("descriptor = %+v, %v", d, err)
	}
	if kernel.PID(d.TypeSpecific[0]) != kernel.PID(reply.F[1]) {
		t.Fatal("descriptor pid mismatch")
	}
}

func TestExecWithFileServerDown(t *testing.T) {
	s, client, fs := startRig(t)
	fs.Proc().Destroy()
	reply := exec(t, client, s, "editor")
	if reply.Op == proto.ReplyOK {
		t.Fatal("exec should fail when the program directory is unreachable")
	}
}
