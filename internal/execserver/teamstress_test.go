package execserver

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/fileserver"
	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/proto"
	"repro/internal/vtime"
)

// TestTeamStressExecServer launches programs from many concurrent client
// processes against one exec-server team.
func TestTeamStressExecServer(t *testing.T) {
	k := kernel.New(netsim.New(vtime.DefaultModel(), 1))
	fs, err := fileserver.Start(k.NewHost("fs"), "fs")
	if err != nil {
		t.Fatal(err)
	}
	binCtx, err := fs.MkdirAll("/bin", "system")
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/bin/tool", "system", make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	s, err := Start(k.NewHost("ws"), core.ContextPair{Server: fs.PID(), Ctx: binCtx}, core.WithTeam(3))
	if err != nil {
		t.Fatal(err)
	}
	s.RegisterBody("tool", func(p *kernel.Process) { <-p.Done() })

	const clients, launches = 4, 3
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		proc, err := k.NewHost(fmt.Sprintf("remote%d", i)).NewProcess("client")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(proc.Destroy)
		wg.Add(1)
		go func(i int, proc *kernel.Process) {
			defer wg.Done()
			for j := 0; j < launches; j++ {
				req := &proto.Message{Op: proto.OpExecProgram}
				proto.SetCSName(req, uint32(core.CtxDefault), "tool")
				reply, err := proc.Send(req, s.PID())
				if err != nil {
					errs <- fmt.Errorf("client %d launch %d: %w", i, j, err)
					return
				}
				if reply.Op != proto.ReplyOK || !strings.HasPrefix(string(reply.Segment), "tool.") {
					errs <- fmt.Errorf("client %d launch %d: %v %q", i, j, reply.Op, reply.Segment)
					return
				}
			}
		}(i, proc)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := s.Running(); got != clients*launches {
		t.Fatalf("running = %d, want %d", got, clients*launches)
	}
}
