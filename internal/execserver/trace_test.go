package execserver

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fileserver"
	"repro/internal/kernel"
	"repro/internal/proto"
	"repro/internal/trace"
	"repro/internal/trace/tracetest"
)

// TestTraceInvariantsExecServer launches a program through an
// exec-server team in a traced domain. The launch pulls the program
// image from the file server, so the trace must show the exec server's
// own nested send transactions inside its serve span.
func TestTraceInvariantsExecServer(t *testing.T) {
	d := tracetest.New()
	fs, err := fileserver.Start(d.K.NewHost("fs"), "fs")
	if err != nil {
		t.Fatal(err)
	}
	binCtx, err := fs.MkdirAll("/bin", "system")
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/bin/tool", "system", make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	s, err := Start(d.K.NewHost("ws"), core.ContextPair{Server: fs.PID(), Ctx: binCtx}, core.WithTeam(2))
	if err != nil {
		t.Fatal(err)
	}
	s.RegisterBody("tool", func(p *kernel.Process) { <-p.Done() })

	proc, err := d.K.NewHost("remote").NewProcess("client")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(proc.Destroy)

	req := &proto.Message{Op: proto.OpExecProgram}
	proto.SetCSName(req, uint32(core.CtxDefault), "tool")
	reply, err := proc.Send(req, s.PID())
	if err != nil || reply.Op != proto.ReplyOK || !strings.HasPrefix(string(reply.Segment), "tool.") {
		t.Fatalf("launch: %v %q, %v", reply.Op, reply.Segment, err)
	}

	spans := d.Check(t)
	// The client's launch send, plus the exec server's nested sends to
	// the file server for the program image.
	tracetest.Require(t, spans, trace.KindSend, 2)
	tracetest.Require(t, spans, trace.KindServe, 2)
	tracetest.Require(t, spans, trace.KindReply, 2)
	tracetest.Require(t, spans, trace.KindHandoff, 1)
	// The nested transaction parents inside the exec server's serve
	// span: at least one send whose ancestry passes through a serve.
	byID := make(map[trace.SpanID]trace.Span, len(spans))
	for _, s := range spans {
		byID[s.ID] = s
	}
	nested := false
	for _, s := range spans {
		if s.Kind != trace.KindSend {
			continue
		}
		for cur := s; cur.Parent != 0; cur = byID[cur.Parent] {
			if p := byID[cur.Parent]; p.Kind == trace.KindServe {
				nested = true
			}
		}
	}
	if !nested {
		t.Fatal("no nested send transaction inside a serve span; exec's file-server fetch is missing from the trace")
	}
}
