// Package execserver implements the V-System program manager (§6): a
// per-workstation server that executes programs and names the programs in
// execution as objects in a context. Executing a program loads its image
// from the configured program directory (a context on a file server) via
// the LoadProgram/MoveTo path, creates a V process for it, and binds a
// name for it in the "programs in execution" context — which the single
// list-directory command can list like any other context (§6).
package execserver

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/proto"
	"repro/internal/vio"
)

// Body is the behaviour of a simulated program: it runs in the program's
// process until it returns or the process is destroyed.
type Body func(p *kernel.Process)

// SessionBody is program behaviour that uses the naming run-time: it
// receives a client session initialized with the invoker's prefix server
// and current context, the environment §6 says every executed program is
// passed.
type SessionBody func(s *client.Session)

// program is one program in execution.
type program struct {
	id       uint32
	name     string // binding in the programs-in-execution context
	image    string // program file name
	pid      kernel.PID
	started  time.Duration
	sizeText uint32
}

// Server is the program manager.
type Server struct {
	srv   *core.Server
	proc  *kernel.Process
	store *core.MapStore
	reg   *vio.Registry
	host  *kernel.Host

	// programDir is the context the program image names are interpreted
	// in — normally the standard program directory on a file server.
	programDir core.ContextPair

	mu            sync.Mutex
	programs      map[uint32]*program
	bodies        map[string]Body
	sessionBodies map[string]SessionBody
	next          uint32
}

// Start spawns a program manager on host, loading images from programDir.
// Options (e.g. core.WithTeam) configure the serving runtime.
func Start(host *kernel.Host, programDir core.ContextPair, opts ...core.Option) (*Server, error) {
	proc, err := host.NewProcess("program-manager")
	if err != nil {
		return nil, err
	}
	s := &Server{
		proc:          proc,
		store:         core.NewMapStore(),
		reg:           vio.NewRegistry(),
		host:          host,
		programDir:    programDir,
		programs:      make(map[uint32]*program),
		bodies:        make(map[string]Body),
		sessionBodies: make(map[string]SessionBody),
	}
	s.srv = core.NewServer(proc, s.store, s, opts...)
	if err := s.srv.Start(); err != nil {
		return nil, err
	}
	if err := proc.SetPid(kernel.ServiceExec, proc.PID(), kernel.ScopeLocal); err != nil {
		return nil, err
	}
	return s, nil
}

// PID returns the server's process identifier.
func (s *Server) PID() kernel.PID { return s.proc.PID() }

// Err reports why the server stopped serving (see core.Server.Err).
func (s *Server) Err() error { return s.srv.Err() }

// RootPair returns the programs-in-execution context.
func (s *Server) RootPair() core.ContextPair { return s.srv.Pair(core.CtxDefault) }

// RegisterBody associates behaviour with a program image name; programs
// without a registered body idle until killed.
func (s *Server) RegisterBody(image string, b Body) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bodies[image] = b
}

// RegisterSessionBody associates naming-aware behaviour with a program
// image name; the body receives a session carrying the invoker's prefix
// server and current context (§6).
func (s *Server) RegisterSessionBody(image string, b SessionBody) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sessionBodies[image] = b
}

// Running returns the number of programs in execution.
func (s *Server) Running() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.programs)
}

func (s *Server) describe(p *program) proto.Descriptor {
	return proto.Descriptor{
		Tag:          proto.TagProgram,
		ObjectID:     p.id,
		Name:         p.name,
		Owner:        p.image,
		Size:         p.sizeText,
		Modified:     uint64(p.started),
		Perms:        proto.PermRead | proto.PermExecute,
		TypeSpecific: [2]uint32{uint32(p.pid), 0},
	}
}

// HandleNamed implements core.Handler.
func (s *Server) HandleNamed(req *core.Request, res *core.Resolution) *proto.Message {
	switch req.Msg.Op {
	case proto.OpExecProgram:
		if res.Last == "" {
			return core.ErrorReplyMsg(proto.ErrBadArgs)
		}
		return s.exec(req.Proc(), res.Last, req.Msg)

	case proto.OpCreateInstance:
		if proto.OpenMode(req.Msg)&proto.ModeDirectory == 0 {
			return core.ErrorReplyMsg(proto.ErrModeNotSupported)
		}
		if _, err := res.ContextOf(); err != nil {
			return core.ErrorReplyMsg(err)
		}
		pattern, err := proto.DirPattern(req.Msg)
		if err != nil {
			return core.ErrorReplyMsg(err)
		}
		return s.openDirectory(req.Proc(), res.Name, pattern)

	case proto.OpQueryObject:
		if res.Entry == nil || res.Entry.Object == nil {
			return core.ErrorReplyMsg(proto.ErrNotFound)
		}
		s.mu.Lock()
		p := s.programs[res.Entry.Object.ID]
		var d proto.Descriptor
		if p != nil {
			d = s.describe(p)
		}
		s.mu.Unlock()
		if p == nil {
			return core.ErrorReplyMsg(proto.ErrNotFound)
		}
		req.Proc().ChargeCompute(req.Proc().Kernel().Model().DescriptorFabricateCost)
		reply := core.OkReply()
		reply.Segment = d.AppendEncoded(nil)
		return reply

	case proto.OpRemoveObject:
		// Removing a program's name from the context kills it.
		if res.Entry == nil || res.Entry.Object == nil {
			return core.ErrorReplyMsg(proto.ErrNotFound)
		}
		return s.kill(res.Entry.Object.ID, res.Last)

	default:
		return core.ErrorReplyMsg(proto.ErrIllegalRequest)
	}
}

// HandleOp implements core.Handler.
func (s *Server) HandleOp(req *core.Request) *proto.Message {
	if reply := s.reg.HandleOp(req.Proc(), req.Msg); reply != nil {
		return reply
	}
	switch req.Msg.Op {
	case proto.OpKillProgram:
		s.mu.Lock()
		var name string
		if p := s.programs[req.Msg.F[0]]; p != nil {
			name = p.name
		}
		s.mu.Unlock()
		if name == "" {
			return core.ErrorReplyMsg(proto.ErrNotFound)
		}
		return s.kill(req.Msg.F[0], name)
	default:
		return core.ErrorReplyMsg(proto.ErrIllegalRequest)
	}
}

// exec loads the program image from the program directory and starts it,
// passing along the invoker's naming environment (§6).
func (s *Server) exec(serving *kernel.Process, image string, req *proto.Message) *proto.Message {
	// Load the program text from the file server via MoveTo (§3.1). A
	// 64 KB buffer stands in for the program's text+data segments.
	buf := make([]byte, 64*1024)
	loadReq := &proto.Message{Op: proto.OpLoadProgram}
	proto.SetCSName(loadReq, uint32(s.programDir.Ctx), image)
	reply, err := serving.SendMove(loadReq, s.programDir.Server, nil, buf)
	if err != nil {
		return core.ErrorReplyMsg(fmt.Errorf("load %q: %w", image, kernelToProto(err)))
	}
	if err := proto.ReplyError(reply.Op); err != nil {
		return core.ErrorReplyMsg(fmt.Errorf("load %q: %w", image, err))
	}
	loaded := reply.F[3]

	s.mu.Lock()
	body := s.bodies[image]
	sessionBody := s.sessionBodies[image]
	s.next++
	id := s.next
	s.mu.Unlock()
	prefixPid, curServer, curCtx := proto.ExecEnvironment(req)
	if body == nil && sessionBody == nil {
		body = func(p *kernel.Process) { <-p.Done() }
	}
	proc, err := s.host.Spawn("prog:"+image, func(p *kernel.Process) {
		if sessionBody != nil {
			// The program inherits the invoker's current context and
			// prefix server (§6).
			sess := client.New(p, kernel.PID(prefixPid),
				core.ContextPair{Server: kernel.PID(curServer), Ctx: core.ContextID(curCtx)}, "")
			sessionBody(sess)
			return
		}
		body(p)
	})
	if err != nil {
		return core.ErrorReplyMsg(proto.ErrNoServerResources)
	}

	p := &program{
		id:       id,
		name:     fmt.Sprintf("%s.%d", image, id),
		image:    image,
		pid:      proc.PID(),
		started:  serving.Now(),
		sizeText: loaded,
	}
	s.mu.Lock()
	s.programs[id] = p
	s.mu.Unlock()
	if err := s.store.Bind(core.CtxDefault, p.name, core.ObjectEntry(proto.TagProgram, id)); err != nil {
		proc.Destroy()
		s.mu.Lock()
		delete(s.programs, id)
		s.mu.Unlock()
		return core.ErrorReplyMsg(err)
	}

	out := core.OkReply()
	out.F[0] = id
	out.F[1] = uint32(proc.PID())
	out.Segment = []byte(p.name)
	return out
}

// kill destroys a program's process and unbinds its name.
func (s *Server) kill(id uint32, name string) *proto.Message {
	s.mu.Lock()
	p := s.programs[id]
	delete(s.programs, id)
	s.mu.Unlock()
	if p == nil {
		return core.ErrorReplyMsg(proto.ErrNotFound)
	}
	if victim, _ := findProcess(s.host.Kernel(), p.pid); victim != nil {
		victim.Destroy()
	}
	if err := s.store.Unbind(core.CtxDefault, name); err != nil {
		return core.ErrorReplyMsg(err)
	}
	return core.OkReply()
}

func (s *Server) openDirectory(p *kernel.Process, name, pattern string) *proto.Message {
	s.mu.Lock()
	ids := make([]uint32, 0, len(s.programs))
	for id := range s.programs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	records := make([]proto.Descriptor, 0, len(ids))
	for _, id := range ids {
		records = append(records, s.describe(s.programs[id]))
	}
	s.mu.Unlock()
	records = core.FilterRecords(records, pattern)
	model := p.Kernel().Model()
	p.ChargeCompute(time.Duration(len(records)) * model.DescriptorFabricateCost)
	iid, err := s.reg.Open(vio.NewDirectoryInstance(records, nil), name)
	if err != nil {
		return core.ErrorReplyMsg(err)
	}
	inst, _ := s.reg.Get(iid)
	info := inst.Info()
	info.ID = iid
	reply := core.OkReply()
	proto.SetInstanceInfo(reply, info)
	proto.SetInstanceOwner(reply, uint32(s.proc.PID()))
	return reply
}

// kernelToProto maps kernel send failures onto protocol errors so exec
// replies stay within the standard reply codes.
func kernelToProto(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%w: %v", proto.ErrDeviceError, err)
}

// findProcess resolves a pid in the domain (helper around the kernel's
// internal lookup, via the host table).
func findProcess(k *kernel.Kernel, pid kernel.PID) (*kernel.Process, error) {
	h := k.HostByID(pid.Host())
	if h == nil {
		return nil, proto.ErrNotFound
	}
	return h.ProcessByPID(pid)
}

var _ core.Handler = (*Server)(nil)
