package vio

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/proto"
)

func TestRegistryOpenGetRelease(t *testing.T) {
	r := NewRegistry()
	inst := NewBytesInstance([]byte("abc"))
	id, err := r.Open(inst, "file-a")
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Get(id)
	if err != nil || got != Instance(inst) {
		t.Fatalf("Get = %v, %v", got, err)
	}
	name, err := r.NameOf(id)
	if err != nil || name != "file-a" {
		t.Fatalf("NameOf = %q, %v", name, err)
	}
	if err := r.Release(id); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get(id); !errors.Is(err, proto.ErrBadArgs) {
		t.Fatalf("Get after release err = %v", err)
	}
	if err := r.Release(id); !errors.Is(err, proto.ErrBadArgs) {
		t.Fatalf("double release err = %v", err)
	}
}

func TestRegistryIDsNotImmediatelyReused(t *testing.T) {
	// §4.3: servers maximize the time before reusing an instance id.
	r := NewRegistry()
	a, _ := r.Open(NewBytesInstance(nil), "a")
	if err := r.Release(a); err != nil {
		t.Fatal(err)
	}
	b, _ := r.Open(NewBytesInstance(nil), "b")
	if a == b {
		t.Fatal("instance id reused immediately")
	}
}

func TestRegistryCount(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 5; i++ {
		if _, err := r.Open(NewBytesInstance(nil), "x"); err != nil {
			t.Fatal(err)
		}
	}
	if r.Count() != 5 {
		t.Fatalf("Count = %d", r.Count())
	}
}

func TestRegistryReleaseCallback(t *testing.T) {
	r := NewRegistry()
	released := false
	id, _ := r.Open(NewBytesInstance(nil, OnRelease(func() { released = true })), "x")
	if err := r.Release(id); err != nil {
		t.Fatal(err)
	}
	if !released {
		t.Fatal("release callback not invoked")
	}
}

func TestBytesInstanceRead(t *testing.T) {
	b := NewBytesInstance([]byte("hello world"))
	buf := make([]byte, 5)
	n, err := b.ReadAt(nil, 6, buf)
	if err != nil || n != 5 || string(buf) != "world" {
		t.Fatalf("ReadAt = %d %q %v", n, buf, err)
	}
	if _, err := b.ReadAt(nil, 11, buf); !errors.Is(err, proto.ErrEndOfFile) {
		t.Fatalf("EOF err = %v", err)
	}
}

func TestBytesInstanceReadOnlyWriteFails(t *testing.T) {
	b := NewBytesInstance([]byte("x"))
	if _, err := b.WriteAt(nil, 0, []byte("y")); !errors.Is(err, proto.ErrModeNotSupported) {
		t.Fatalf("err = %v", err)
	}
}

func TestBytesInstanceWriteGrows(t *testing.T) {
	b := NewBytesInstance([]byte("abc"), Writable())
	if _, err := b.WriteAt(nil, 5, []byte("XY")); err != nil {
		t.Fatal(err)
	}
	got := b.Bytes()
	if len(got) != 7 || string(got[5:]) != "XY" {
		t.Fatalf("Bytes = %q", got)
	}
	info := b.Info()
	if info.SizeBytes != 7 || info.Flags&proto.ModeWrite == 0 {
		t.Fatalf("Info = %+v", info)
	}
}

func TestBytesInstanceNegativeWriteOffset(t *testing.T) {
	b := NewBytesInstance(nil, Writable())
	if _, err := b.WriteAt(nil, -1, []byte("x")); !errors.Is(err, proto.ErrBadArgs) {
		t.Fatalf("err = %v", err)
	}
}

func TestBytesInstanceWriteSink(t *testing.T) {
	var gotOff int64
	var gotData []byte
	b := NewBytesInstance([]byte("snapshot"), WithWriteSink(func(off int64, data []byte) error {
		gotOff, gotData = off, append([]byte(nil), data...)
		return nil
	}))
	if _, err := b.WriteAt(nil, 3, []byte("mod")); err != nil {
		t.Fatal(err)
	}
	if gotOff != 3 || string(gotData) != "mod" {
		t.Fatalf("sink got off=%d data=%q", gotOff, gotData)
	}
	// Snapshot unchanged.
	if string(b.Bytes()) != "snapshot" {
		t.Fatal("write sink must not mutate the snapshot")
	}
}

func TestBytesInstanceReadWriteProperty(t *testing.T) {
	f := func(data []byte, off uint16) bool {
		if len(data) == 0 {
			return true
		}
		o := int64(off) % int64(len(data))
		b := NewBytesInstance(append([]byte(nil), data...), Writable())
		buf := make([]byte, len(data))
		n, err := b.ReadAt(nil, o, buf)
		if err != nil || n != len(data)-int(o) {
			return false
		}
		return string(buf[:n]) == string(data[o:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDirectoryInstanceReadDecodes(t *testing.T) {
	records := []proto.Descriptor{
		{Tag: proto.TagFile, Name: "a", Size: 1},
		{Tag: proto.TagDirectory, Name: "d"},
	}
	inst := NewDirectoryInstance(records, nil)
	buf := make([]byte, inst.Info().SizeBytes)
	if _, err := inst.ReadAt(nil, 0, buf); err != nil {
		t.Fatal(err)
	}
	got, err := proto.DecodeDescriptors(buf)
	if err != nil || len(got) != 2 || got[0].Name != "a" {
		t.Fatalf("decoded %+v, %v", got, err)
	}
}

func TestDirectoryInstanceWriteInvokesModify(t *testing.T) {
	var modified []proto.Descriptor
	inst := NewDirectoryInstance(nil, func(d proto.Descriptor) error {
		modified = append(modified, d)
		return nil
	})
	rec := proto.Descriptor{Tag: proto.TagFile, Name: "a", Perms: proto.PermRead}
	if _, err := inst.WriteAt(nil, 0, rec.AppendEncoded(nil)); err != nil {
		t.Fatal(err)
	}
	if len(modified) != 1 || modified[0].Name != "a" || modified[0].Perms != proto.PermRead {
		t.Fatalf("modify saw %+v", modified)
	}
}

func TestDirectoryInstanceWriteCorruptRecord(t *testing.T) {
	inst := NewDirectoryInstance(nil, func(proto.Descriptor) error { return nil })
	if _, err := inst.WriteAt(nil, 0, []byte{1, 2, 3}); !errors.Is(err, proto.ErrBadArgs) {
		t.Fatalf("err = %v", err)
	}
}

func TestDirectoryInstanceWithoutModifyIsReadOnly(t *testing.T) {
	inst := NewDirectoryInstance(nil, nil)
	if _, err := inst.WriteAt(nil, 0, []byte("x")); !errors.Is(err, proto.ErrModeNotSupported) {
		t.Fatalf("err = %v", err)
	}
}

func TestHandleOpQueryReadWriteRelease(t *testing.T) {
	r := NewRegistry()
	id, _ := r.Open(NewBytesInstance([]byte("0123456789"), Writable(), WithBlockSize(4)), "f")

	q := &proto.Message{Op: proto.OpQueryInstance, F: [6]uint32{uint32(id)}}
	reply := r.HandleOp(nil, q)
	if reply.Op != proto.ReplyOK {
		t.Fatalf("query reply = %v", reply.Op)
	}
	info := proto.GetInstanceInfo(reply)
	if info.SizeBytes != 10 || info.BlockSize != 4 {
		t.Fatalf("info = %+v", info)
	}

	read := &proto.Message{Op: proto.OpReadInstance, F: [6]uint32{uint32(id), 1}}
	reply = r.HandleOp(nil, read)
	if reply.Op != proto.ReplyOK || string(reply.Segment) != "4567" {
		t.Fatalf("read block 1 = %v %q", reply.Op, reply.Segment)
	}

	write := &proto.Message{Op: proto.OpWriteInstance, F: [6]uint32{uint32(id), 0, 2}, Segment: []byte("XX")}
	reply = r.HandleOp(nil, write)
	if reply.Op != proto.ReplyOK || reply.F[1] != 2 {
		t.Fatalf("write reply = %v", reply)
	}
	read0 := &proto.Message{Op: proto.OpReadInstance, F: [6]uint32{uint32(id), 0}}
	if got := r.HandleOp(nil, read0); string(got.Segment) != "01XX" {
		t.Fatalf("after write, block 0 = %q", got.Segment)
	}

	rel := &proto.Message{Op: proto.OpReleaseInstance, F: [6]uint32{uint32(id)}}
	if reply = r.HandleOp(nil, rel); reply.Op != proto.ReplyOK {
		t.Fatalf("release reply = %v", reply.Op)
	}
	if r.Count() != 0 {
		t.Fatal("release did not remove instance")
	}
}

func TestHandleOpReadPastEnd(t *testing.T) {
	r := NewRegistry()
	id, _ := r.Open(NewBytesInstance([]byte("ab")), "f")
	read := &proto.Message{Op: proto.OpReadInstance, F: [6]uint32{uint32(id), 9}}
	if reply := r.HandleOp(nil, read); reply.Op != proto.ReplyEndOfFile {
		t.Fatalf("reply = %v", reply.Op)
	}
}

func TestHandleOpWriteToReadOnly(t *testing.T) {
	r := NewRegistry()
	id, _ := r.Open(NewBytesInstance([]byte("ab")), "f")
	w := &proto.Message{Op: proto.OpWriteInstance, F: [6]uint32{uint32(id)}, Segment: []byte("x")}
	if reply := r.HandleOp(nil, w); reply.Op != proto.ReplyModeNotSupported {
		t.Fatalf("reply = %v", reply.Op)
	}
}

func TestHandleOpUnknownInstance(t *testing.T) {
	r := NewRegistry()
	read := &proto.Message{Op: proto.OpReadInstance, F: [6]uint32{777}}
	if reply := r.HandleOp(nil, read); reply.Op != proto.ReplyBadArgs {
		t.Fatalf("reply = %v", reply.Op)
	}
}

func TestHandleOpUnhandledReturnsNil(t *testing.T) {
	r := NewRegistry()
	if reply := r.HandleOp(nil, &proto.Message{Op: proto.OpEcho}); reply != nil {
		t.Fatalf("reply = %v", reply)
	}
}

func TestHandleOpGetInstanceName(t *testing.T) {
	r := NewRegistry()
	id, _ := r.Open(NewBytesInstance(nil), "[storage]/users/mann/f")
	req := &proto.Message{Op: proto.OpGetInstanceName, F: [6]uint32{uint32(id)}}
	reply := r.HandleOp(nil, req)
	if reply.Op != proto.ReplyOK || string(reply.Segment) != "[storage]/users/mann/f" {
		t.Fatalf("reply = %v %q", reply.Op, reply.Segment)
	}
}
