package vio

import (
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/kernel"
	"repro/internal/proto"
)

// File is the client side of an open instance: it wraps the
// (server-pid, instance-id) pair returned by OpCreateInstance and speaks
// the block-oriented instance operations, presenting a sequential
// io.Reader/io.Writer.
type File struct {
	proc   *kernel.Process
	server kernel.PID
	info   proto.InstanceInfo
	pos    int64
	closed bool
}

// NewFile wraps an already-opened instance. Most callers use the client
// package's Open, which performs the name-mapped OpCreateInstance.
func NewFile(proc *kernel.Process, server kernel.PID, info proto.InstanceInfo) *File {
	return &File{proc: proc, server: server, info: info}
}

// Info returns the instance parameters from open time.
func (f *File) Info() proto.InstanceInfo { return f.info }

// Server returns the pid of the server implementing the instance.
func (f *File) Server() kernel.PID { return f.server }

// InstanceID returns the instance identifier.
func (f *File) InstanceID() uint16 { return f.info.ID }

// transact sends one instance operation and maps failure replies to
// errors.
func (f *File) transact(req *proto.Message) (*proto.Message, error) {
	if f.closed {
		return nil, fmt.Errorf("%w: instance closed", proto.ErrBadArgs)
	}
	reply, err := f.proc.Send(req, f.server)
	if err != nil {
		return nil, err
	}
	if err := proto.ReplyError(reply.Op); err != nil {
		return nil, err
	}
	return reply, nil
}

// ReadBlock reads up to one block at the given block index.
func (f *File) ReadBlock(block uint32) ([]byte, error) {
	req := &proto.Message{Op: proto.OpReadInstance}
	req.F[0] = uint32(f.info.ID)
	req.F[1] = block
	reply, err := f.transact(req)
	if err != nil {
		return nil, err
	}
	return reply.Segment, nil
}

// Read implements io.Reader with sequential block requests.
func (f *File) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	bs := int64(f.info.BlockSize)
	if bs == 0 {
		bs = DefaultBlockSize
	}
	total := 0
	for total < len(p) {
		block := uint32(f.pos / bs)
		within := f.pos % bs
		data, err := f.ReadBlock(block)
		if err != nil {
			if errors.Is(err, proto.ErrEndOfFile) && total > 0 {
				return total, nil
			}
			if errors.Is(err, proto.ErrEndOfFile) {
				return 0, io.EOF
			}
			return total, err
		}
		if int64(len(data)) <= within {
			if total > 0 {
				return total, nil
			}
			return 0, io.EOF
		}
		n := copy(p[total:], data[within:])
		total += n
		f.pos += int64(n)
		if int64(len(data)) < bs {
			// Short block: end of data.
			return total, nil
		}
	}
	return total, nil
}

// ReadRetry reads like Read but backs off and retries when the server
// answers Retry — the not-ready discipline for stream devices such as
// pipes. It gives up after maxRetries consecutive Retry replies.
func (f *File) ReadRetry(p []byte, maxRetries int) (int, error) {
	for attempt := 0; ; attempt++ {
		n, err := f.Read(p)
		if err != nil && errors.Is(err, proto.ErrRetry) && attempt < maxRetries {
			// Back off in virtual time before polling again.
			f.proc.ChargeCompute(time.Millisecond)
			continue
		}
		return n, err
	}
}

// ReadAll reads the instance from the current position to EOF.
func (f *File) ReadAll() ([]byte, error) {
	var out []byte
	buf := make([]byte, 4096)
	for {
		n, err := f.Read(buf)
		out = append(out, buf[:n]...)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		if n == 0 {
			return out, nil
		}
	}
}

// Write implements io.Writer with sequential block writes.
func (f *File) Write(p []byte) (int, error) {
	bs := int64(f.info.BlockSize)
	if bs == 0 {
		bs = DefaultBlockSize
	}
	total := 0
	for total < len(p) {
		block := uint32(f.pos / bs)
		within := f.pos % bs
		chunk := p[total:]
		if max := bs - within; int64(len(chunk)) > max {
			chunk = chunk[:max]
		}
		req := &proto.Message{Op: proto.OpWriteInstance}
		req.F[0] = uint32(f.info.ID)
		req.F[1] = block
		req.F[2] = uint32(within)
		req.Segment = chunk
		reply, err := f.transact(req)
		if err != nil {
			return total, err
		}
		n := int(reply.F[1])
		total += n
		f.pos += int64(n)
		if n < len(chunk) {
			return total, io.ErrShortWrite
		}
	}
	return total, nil
}

// Seek implements io.Seeker relative to the open-time size.
func (f *File) Seek(offset int64, whence int) (int64, error) {
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = f.pos
	case io.SeekEnd:
		base = int64(f.info.SizeBytes)
	default:
		return 0, fmt.Errorf("%w: whence %d", proto.ErrBadArgs, whence)
	}
	if base+offset < 0 {
		return 0, fmt.Errorf("%w: negative position", proto.ErrBadArgs)
	}
	f.pos = base + offset
	return f.pos, nil
}

// Query refreshes and returns the instance parameters.
func (f *File) Query() (proto.InstanceInfo, error) {
	req := &proto.Message{Op: proto.OpQueryInstance}
	req.F[0] = uint32(f.info.ID)
	reply, err := f.transact(req)
	if err != nil {
		return proto.InstanceInfo{}, err
	}
	info := proto.GetInstanceInfo(reply)
	f.info = info
	return info, nil
}

// InstanceName asks the server for the CSname this instance was opened
// under — the inverse mapping (§5.7).
func (f *File) InstanceName() (string, error) {
	req := &proto.Message{Op: proto.OpGetInstanceName}
	req.F[0] = uint32(f.info.ID)
	reply, err := f.transact(req)
	if err != nil {
		return "", err
	}
	return string(reply.Segment), nil
}

// Close releases the instance at the server.
func (f *File) Close() error {
	if f.closed {
		return nil
	}
	req := &proto.Message{Op: proto.OpReleaseInstance}
	req.F[0] = uint32(f.info.ID)
	_, err := f.transact(req)
	f.closed = true
	return err
}

var (
	_ io.Reader = (*File)(nil)
	_ io.Writer = (*File)(nil)
	_ io.Seeker = (*File)(nil)
	_ io.Closer = (*File)(nil)
)
