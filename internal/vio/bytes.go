package vio

import (
	"fmt"
	"sync"

	"repro/internal/kernel"
	"repro/internal/proto"
)

// BytesInstance serves a byte slice as a file-like instance: memory
// arrays, fabricated context directories, print-job payloads, terminal
// buffers. WriteSink, if set, receives every write instead of mutating the
// snapshot — this is how writing a context directory record becomes a
// modify operation (§5.6).
type BytesInstance struct {
	mu        sync.Mutex
	data      []byte
	blockSize uint32
	flags     uint32
	released  func()
	writeSink func(off int64, data []byte) error
}

// BytesOption configures a BytesInstance.
type BytesOption func(*BytesInstance)

// WithBlockSize overrides the default block size.
func WithBlockSize(bs uint32) BytesOption {
	return func(b *BytesInstance) { b.blockSize = bs }
}

// Writable enables writes that grow/mutate the in-memory data.
func Writable() BytesOption {
	return func(b *BytesInstance) { b.flags |= proto.ModeWrite }
}

// WithWriteSink enables writes and routes them to sink instead of the
// buffer.
func WithWriteSink(sink func(off int64, data []byte) error) BytesOption {
	return func(b *BytesInstance) {
		b.flags |= proto.ModeWrite
		b.writeSink = sink
	}
}

// OnRelease registers a release callback.
func OnRelease(fn func()) BytesOption {
	return func(b *BytesInstance) { b.released = fn }
}

// NewBytesInstance serves data (readable by default).
func NewBytesInstance(data []byte, opts ...BytesOption) *BytesInstance {
	b := &BytesInstance{
		data:      data,
		blockSize: DefaultBlockSize,
		flags:     proto.ModeRead,
	}
	for _, opt := range opts {
		opt(b)
	}
	return b
}

// Info implements Instance.
func (b *BytesInstance) Info() proto.InstanceInfo {
	b.mu.Lock()
	defer b.mu.Unlock()
	return proto.InstanceInfo{
		SizeBytes: uint32(len(b.data)),
		BlockSize: b.blockSize,
		Flags:     b.flags,
	}
}

// ReadAt implements Instance. Byte instances live in server memory, so no
// wait is charged to the serving process.
func (b *BytesInstance) ReadAt(_ *kernel.Process, off int64, buf []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if off >= int64(len(b.data)) {
		return 0, proto.ErrEndOfFile
	}
	return copy(buf, b.data[off:]), nil
}

// WriteAt implements Instance.
func (b *BytesInstance) WriteAt(_ *kernel.Process, off int64, data []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.flags&proto.ModeWrite == 0 {
		return 0, proto.ErrModeNotSupported
	}
	if b.writeSink != nil {
		if err := b.writeSink(off, data); err != nil {
			return 0, err
		}
		return len(data), nil
	}
	if off < 0 {
		return 0, fmt.Errorf("%w: negative offset", proto.ErrBadArgs)
	}
	if need := int(off) + len(data); need > len(b.data) {
		grown := make([]byte, need)
		copy(grown, b.data)
		b.data = grown
	}
	return copy(b.data[off:], data), nil
}

// Release implements Instance.
func (b *BytesInstance) Release() {
	if b.released != nil {
		b.released()
	}
}

// Bytes returns a copy of the current data.
func (b *BytesInstance) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]byte, len(b.data))
	copy(out, b.data)
	return out
}

// NewDirectoryInstance fabricates a context directory instance: a
// read-only stream of the given description records, where writing a
// record back invokes modify on the corresponding object (§5.6).
func NewDirectoryInstance(records []proto.Descriptor, modify func(proto.Descriptor) error) *BytesInstance {
	opts := []BytesOption{}
	if modify != nil {
		opts = append(opts, WithWriteSink(func(off int64, data []byte) error {
			// Each write carries one or more whole description records;
			// writing a record has the semantics of the modification
			// operation on the corresponding object.
			records, err := proto.DecodeDescriptors(data)
			if err != nil {
				return err
			}
			for _, d := range records {
				if err := modify(d); err != nil {
					return err
				}
			}
			return nil
		}))
	}
	return NewBytesInstance(proto.EncodeDescriptors(records), opts...)
}

var _ Instance = (*BytesInstance)(nil)
