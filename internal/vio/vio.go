// Package vio implements the V I/O protocol (§3.2): uniform, file-like
// access to data sources and sinks — disk files, terminals, print queues,
// network connections, memory arrays, and context directories — over the
// kernel IPC as transport.
//
// The server side registers open instances in a Registry keyed by 16-bit
// object instance identifiers (§4.3) and serves the block-oriented
// instance operations. The client side wraps (server-pid, instance-id) in
// a File with sequential Read/Write/Close.
package vio

import (
	"fmt"
	"sync"

	"repro/internal/kernel"
	"repro/internal/proto"
)

// Instance is an open file-like object on the server side. Offsets are
// byte offsets; implementations return proto.ErrEndOfFile past the end.
//
// ReadAt and WriteAt receive the process serving the request (a server
// may be a multi-process team, §3.1) so device and compute waits are
// charged to the serving process's clock, not the team's receptionist.
// Instances may be served by concurrent team workers and must guard their
// own state.
type Instance interface {
	// Info returns the instance parameters (size, block size, modes).
	Info() proto.InstanceInfo
	// ReadAt fills buf from the object starting at off, charging waits
	// to the serving process p.
	ReadAt(p *kernel.Process, off int64, buf []byte) (int, error)
	// WriteAt stores data into the object starting at off, charging
	// waits to the serving process p.
	WriteAt(p *kernel.Process, off int64, data []byte) (int, error)
	// Release closes the instance.
	Release()
}

// DefaultBlockSize is the conventional V page size.
const DefaultBlockSize = 512

// Registry holds a server's open instances, keyed by object instance
// identifier. Identifiers are allocated so as to maximize the time before
// reuse (§4.3).
type Registry struct {
	mu        sync.Mutex
	instances map[uint16]*slot
	next      uint16
}

type slot struct {
	inst Instance
	name string // the CSname the instance was opened by, for inverse mapping
}

// NewRegistry returns an empty instance registry.
func NewRegistry() *Registry {
	return &Registry{instances: make(map[uint16]*slot)}
}

// Open registers an instance, recording the name it was opened under, and
// returns its new instance identifier.
func (r *Registry) Open(inst Instance, name string) (uint16, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.instances) >= 0xFFFE {
		return 0, fmt.Errorf("%w: instance table full", proto.ErrNoServerResources)
	}
	for {
		r.next++
		if r.next == 0 {
			r.next = 1
		}
		if _, used := r.instances[r.next]; !used {
			break
		}
	}
	r.instances[r.next] = &slot{inst: inst, name: name}
	return r.next, nil
}

// Get returns the instance with the given identifier.
func (r *Registry) Get(id uint16) (Instance, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.instances[id]
	if !ok {
		return nil, fmt.Errorf("%w: instance %d", proto.ErrBadArgs, id)
	}
	return s.inst, nil
}

// NameOf returns the CSname an instance was opened under — the inverse
// mapping from instance id to name (§5.7). As §6 discusses, this is the
// inverse of a many-to-one function: it returns *a* name, the one used at
// open time, which may since have been unbound.
func (r *Registry) NameOf(id uint16) (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.instances[id]
	if !ok {
		return "", fmt.Errorf("%w: instance %d", proto.ErrBadArgs, id)
	}
	return s.name, nil
}

// Release removes and releases an instance.
func (r *Registry) Release(id uint16) error {
	r.mu.Lock()
	s, ok := r.instances[id]
	delete(r.instances, id)
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: instance %d", proto.ErrBadArgs, id)
	}
	s.inst.Release()
	return nil
}

// Count returns the number of open instances.
func (r *Registry) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.instances)
}

// HandleOp serves the generic instance operations (query, read, write,
// release, instance-name) against the registry, returning nil for
// operation codes it does not handle so the caller can try its own. p is
// the process serving the request; instance waits are charged to it.
func (r *Registry) HandleOp(p *kernel.Process, msg *proto.Message) *proto.Message {
	switch msg.Op {
	case proto.OpQueryInstance:
		inst, err := r.Get(uint16(msg.F[0]))
		if err != nil {
			return proto.NewReply(proto.ErrorReply(err))
		}
		reply := proto.NewReply(proto.ReplyOK)
		proto.SetInstanceInfo(reply, inst.Info())
		return reply

	case proto.OpReadInstance:
		inst, err := r.Get(uint16(msg.F[0]))
		if err != nil {
			return proto.NewReply(proto.ErrorReply(err))
		}
		info := inst.Info()
		if info.Flags&proto.ModeRead == 0 {
			return proto.NewReply(proto.ReplyModeNotSupported)
		}
		count := msg.F[2]
		if count == 0 || count > info.BlockSize {
			count = info.BlockSize
		}
		buf := make([]byte, count)
		off := int64(msg.F[1]) * int64(info.BlockSize)
		n, err := inst.ReadAt(p, off, buf)
		if n == 0 && err != nil {
			return proto.NewReply(proto.ErrorReply(err))
		}
		reply := proto.NewReply(proto.ReplyOK)
		reply.F[0] = msg.F[0]
		reply.F[1] = uint32(n)
		reply.Segment = buf[:n]
		return reply

	case proto.OpWriteInstance:
		inst, err := r.Get(uint16(msg.F[0]))
		if err != nil {
			return proto.NewReply(proto.ErrorReply(err))
		}
		info := inst.Info()
		if info.Flags&proto.ModeWrite == 0 {
			return proto.NewReply(proto.ReplyModeNotSupported)
		}
		off := int64(msg.F[1])*int64(info.BlockSize) + int64(msg.F[2])
		n, err := inst.WriteAt(p, off, msg.Segment)
		if err != nil {
			return proto.NewReply(proto.ErrorReply(err))
		}
		reply := proto.NewReply(proto.ReplyOK)
		reply.F[0] = msg.F[0]
		reply.F[1] = uint32(n)
		return reply

	case proto.OpReleaseInstance:
		if err := r.Release(uint16(msg.F[0])); err != nil {
			return proto.NewReply(proto.ErrorReply(err))
		}
		return proto.NewReply(proto.ReplyOK)

	case proto.OpGetInstanceName:
		name, err := r.NameOf(uint16(msg.F[0]))
		if err != nil {
			return proto.NewReply(proto.ErrorReply(err))
		}
		reply := proto.NewReply(proto.ReplyOK)
		reply.Segment = []byte(name)
		return reply

	default:
		return nil
	}
}
