package inetserver

import (
	"testing"

	"repro/internal/core"
	"repro/internal/proto"
	"repro/internal/trace"
	"repro/internal/trace/tracetest"
	"repro/internal/vio"
)

// TestTraceInvariantsInetServer dials an echo connection and round-trips
// data in a traced domain, then checks the trace invariants.
func TestTraceInvariantsInetServer(t *testing.T) {
	d := tracetest.New()
	s, err := Start(d.K.NewHost("services"), WithTeam(2))
	if err != nil {
		t.Fatal(err)
	}
	proc, err := d.K.NewHost("ws").NewProcess("client")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(proc.Destroy)

	req := &proto.Message{Op: proto.OpCreateInstance}
	proto.SetCSName(req, uint32(core.CtxDefault), "tcp/echo.host:7")
	proto.SetOpenMode(req, proto.ModeRead|proto.ModeWrite|proto.ModeCreate)
	reply, err := proc.Send(req, s.PID())
	if err != nil || proto.ReplyError(reply.Op) != nil {
		t.Fatalf("dial: %v, %v", reply, err)
	}
	f := vio.NewFile(proc, s.PID(), proto.GetInstanceInfo(reply))
	msg := "traced ping"
	if _, err := f.Write([]byte(msg)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32)
	n, err := f.Read(buf)
	if err != nil || string(buf[:n]) != msg {
		t.Fatalf("read: %q, %v", buf[:n], err)
	}

	spans := d.Check(t)
	tracetest.Require(t, spans, trace.KindSend, 3)
	tracetest.Require(t, spans, trace.KindServe, 3)
	tracetest.Require(t, spans, trace.KindReply, 3)
	tracetest.Require(t, spans, trace.KindHandoff, 1)
}
