package inetserver

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/proto"
	"repro/internal/vio"
	"repro/internal/vtime"
)

// TestTeamStressInetServer dials and round-trips echo connections from
// many concurrent client processes against one internet-server team.
func TestTeamStressInetServer(t *testing.T) {
	k := kernel.New(netsim.New(vtime.DefaultModel(), 1))
	s, err := Start(k.NewHost("services"), WithTeam(3))
	if err != nil {
		t.Fatal(err)
	}

	const clients, trials = 5, 4
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		proc, err := k.NewHost(fmt.Sprintf("ws%d", i)).NewProcess("client")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(proc.Destroy)
		wg.Add(1)
		go func(i int, proc *kernel.Process) {
			defer wg.Done()
			req := &proto.Message{Op: proto.OpCreateInstance}
			proto.SetCSName(req, uint32(core.CtxDefault), fmt.Sprintf("tcp/echo%d.host:7", i))
			proto.SetOpenMode(req, proto.ModeRead|proto.ModeWrite|proto.ModeCreate)
			reply, err := proc.Send(req, s.PID())
			if err != nil || proto.ReplyError(reply.Op) != nil {
				errs <- fmt.Errorf("client %d dial: %v, %v", i, reply, err)
				return
			}
			f := vio.NewFile(proc, s.PID(), proto.GetInstanceInfo(reply))
			for j := 0; j < trials; j++ {
				msg := fmt.Sprintf("ping %d/%d", i, j)
				if _, err := f.Write([]byte(msg)); err != nil {
					errs <- fmt.Errorf("client %d write %d: %w", i, j, err)
					return
				}
				if _, err := f.Seek(0, 0); err != nil {
					errs <- fmt.Errorf("client %d seek %d: %w", i, j, err)
					return
				}
				buf := make([]byte, 32)
				n, err := f.Read(buf)
				if err != nil || string(buf[:n]) != msg {
					errs <- fmt.Errorf("client %d read %d: %q, %v", i, j, buf[:n], err)
					return
				}
			}
		}(i, proc)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := s.ConnCount(); got != clients {
		t.Fatalf("connections = %d, want %d", got, clients)
	}
}
