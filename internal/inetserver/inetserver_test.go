package inetserver

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/proto"
	"repro/internal/vio"
	"repro/internal/vtime"
)

func startRig(t *testing.T, opts ...Option) (*Server, *kernel.Process) {
	t.Helper()
	k := kernel.New(netsim.New(vtime.DefaultModel(), 1))
	host := k.NewHost("services")
	s, err := Start(host, opts...)
	if err != nil {
		t.Fatal(err)
	}
	clientHost := k.NewHost("ws")
	client, err := clientHost.NewProcess("client")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Destroy() })
	return s, client
}

func dial(t *testing.T, client *kernel.Process, s *Server, dest string) *vio.File {
	t.Helper()
	req := &proto.Message{Op: proto.OpCreateInstance}
	proto.SetCSName(req, uint32(core.CtxDefault), "tcp/"+dest)
	proto.SetOpenMode(req, proto.ModeRead|proto.ModeWrite|proto.ModeCreate)
	reply, err := client.Send(req, s.PID())
	if err != nil {
		t.Fatal(err)
	}
	if err := proto.ReplyError(reply.Op); err != nil {
		t.Fatalf("dial %q: %v", dest, err)
	}
	return vio.NewFile(client, s.PID(), proto.GetInstanceInfo(reply))
}

func TestDialCreatesConnection(t *testing.T) {
	s, client := startRig(t)
	f := dial(t, client, s, "host:23")
	defer f.Close()
	if s.ConnCount() != 1 {
		t.Fatalf("connections = %d", s.ConnCount())
	}
}

func TestEchoRoundTrip(t *testing.T) {
	s, client := startRig(t)
	f := dial(t, client, s, "echo.host:7")
	if _, err := f.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, err := f.Read(buf)
	if err != nil || string(buf[:n]) != "ping" {
		t.Fatalf("read %q, %v", buf[:n], err)
	}
}

func TestCustomResponder(t *testing.T) {
	s, client := startRig(t, WithResponder(func(dest string, sent []byte) []byte {
		return []byte(dest + ":" + strings.ToUpper(string(sent)))
	}))
	f := dial(t, client, s, "shout:1")
	if _, err := f.Write([]byte("hey")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32)
	n, err := f.Read(buf)
	if err != nil || string(buf[:n]) != "shout:1:HEY" {
		t.Fatalf("read %q, %v", buf[:n], err)
	}
}

func TestReadDrainsInbox(t *testing.T) {
	s, client := startRig(t)
	f := dial(t, client, s, "h:1")
	if _, err := f.Write([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3)
	if _, err := f.Read(buf); err != nil {
		t.Fatal(err)
	}
	// Inbox now empty: next read hits EOF.
	if _, err := f.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Read(buf); err == nil {
		t.Fatal("drained inbox should read EOF")
	}
}

func TestConnectionNamesWithForeignCharacters(t *testing.T) {
	// Destination strings contain dots and colons; only '/' separates the
	// tcp context from the connection name.
	s, client := startRig(t)
	f := dial(t, client, s, "su-score.arpa:23")
	defer f.Close()
	q := &proto.Message{Op: proto.OpQueryObject}
	proto.SetCSName(q, uint32(core.CtxDefault), "tcp/su-score.arpa:23")
	reply, err := client.Send(q, s.PID())
	if err != nil || reply.Op != proto.ReplyOK {
		t.Fatalf("query = %v, %v", reply, err)
	}
	d, _, err := proto.DecodeDescriptor(reply.Segment)
	if err != nil || d.Tag != proto.TagTCPConnection || d.Name != "su-score.arpa:23" {
		t.Fatalf("descriptor = %+v, %v", d, err)
	}
}

func TestDialOutsideTCPContextFails(t *testing.T) {
	s, client := startRig(t)
	req := &proto.Message{Op: proto.OpCreateInstance}
	proto.SetCSName(req, uint32(core.CtxDefault), "notcp")
	proto.SetOpenMode(req, proto.ModeCreate|proto.ModeWrite)
	reply, err := client.Send(req, s.PID())
	if err != nil || reply.Op != proto.ReplyNotFound {
		t.Fatalf("reply = %v, %v", reply, err)
	}
}

func TestCloseConnectionByName(t *testing.T) {
	s, client := startRig(t)
	f := dial(t, client, s, "h:1")
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	rm := &proto.Message{Op: proto.OpRemoveObject}
	proto.SetCSName(rm, uint32(core.CtxDefault), "tcp/h:1")
	reply, err := client.Send(rm, s.PID())
	if err != nil || reply.Op != proto.ReplyOK {
		t.Fatalf("remove = %v, %v", reply, err)
	}
	if s.ConnCount() != 0 {
		t.Fatal("connection survived removal")
	}
}

func TestRootDirectoryShowsTCPContext(t *testing.T) {
	s, client := startRig(t)
	req := &proto.Message{Op: proto.OpCreateInstance}
	proto.SetCSName(req, uint32(core.CtxDefault), "")
	proto.SetOpenMode(req, proto.ModeRead|proto.ModeDirectory)
	reply, err := client.Send(req, s.PID())
	if err != nil || reply.Op != proto.ReplyOK {
		t.Fatalf("reply = %v, %v", reply, err)
	}
	f := vio.NewFile(client, s.PID(), proto.GetInstanceInfo(reply))
	raw, err := f.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	records, err := proto.DecodeDescriptors(raw)
	if err != nil || len(records) != 1 || records[0].Name != "tcp" {
		t.Fatalf("records = %v, %v", records, err)
	}
}

func TestTrafficCounters(t *testing.T) {
	s, client := startRig(t)
	f := dial(t, client, s, "h:1")
	if _, err := f.Write([]byte("12345")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	// The block-oriented I/O protocol drains up to a whole block per read
	// request, so the server-side receive counter reflects the full echo.
	buf := make([]byte, 8)
	if _, err := f.Read(buf); err != nil {
		t.Fatal(err)
	}
	q := &proto.Message{Op: proto.OpQueryObject}
	proto.SetCSName(q, uint32(core.CtxDefault), "tcp/h:1")
	reply, err := client.Send(q, s.PID())
	if err != nil {
		t.Fatal(err)
	}
	d, _, err := proto.DecodeDescriptor(reply.Segment)
	if err != nil {
		t.Fatal(err)
	}
	if d.TypeSpecific[0] != 5 || d.TypeSpecific[1] != 5 {
		t.Fatalf("sent/recv = %v", d.TypeSpecific)
	}
}
