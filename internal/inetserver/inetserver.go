// Package inetserver implements the V-System Internet server (§6): a
// server running a simulated IP/TCP implementation, whose open TCP
// connections are named objects in a context. Opening
// "tcp/<destination>" creates a connection; the context directory lists
// the connections — one more context type unified under the
// name-handling protocol.
//
// The remote end is simulated by a configurable responder (default:
// character echo), standing in for the Internet hosts the paper's testbed
// reached through its IP/TCP server.
package inetserver

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/proto"
	"repro/internal/vio"
)

// tcpContext is the context id of the "tcp" subcontext holding
// connections.
const tcpContext core.ContextID = 1

// Responder simulates the remote endpoint of a connection: it receives
// the bytes written and returns the bytes to queue for reading.
type Responder func(dest string, sent []byte) []byte

// EchoResponder is the default remote endpoint: a character echo service.
func EchoResponder(_ string, sent []byte) []byte {
	out := make([]byte, len(sent))
	copy(out, sent)
	return out
}

// conn is one open TCP connection.
type conn struct {
	id       uint32
	dest     string
	sent     uint64
	received uint64
	inbox    []byte // bytes queued for the local reader
	opened   time.Duration
}

// Server is the Internet server.
type Server struct {
	srv     *core.Server
	proc    *kernel.Process
	store   *core.MapStore
	reg     *vio.Registry
	respond Responder
	teamOpt []core.Option

	mu    sync.Mutex
	conns map[uint32]*conn
	next  uint32
}

// Option configures the server.
type Option func(*Server)

// WithResponder overrides the simulated remote endpoint.
func WithResponder(r Responder) Option {
	return func(s *Server) { s.respond = r }
}

// WithTeam serves requests with a team of n processes (§3.1).
func WithTeam(n int) Option {
	return func(s *Server) { s.teamOpt = append(s.teamOpt, core.WithTeam(n)) }
}

// Start spawns an Internet server on host.
func Start(host *kernel.Host, opts ...Option) (*Server, error) {
	proc, err := host.NewProcess("internet-server")
	if err != nil {
		return nil, err
	}
	s := &Server{
		proc:    proc,
		store:   core.NewMapStore(),
		reg:     vio.NewRegistry(),
		respond: EchoResponder,
		conns:   make(map[uint32]*conn),
	}
	for _, opt := range opts {
		opt(s)
	}
	s.store.AddContext(tcpContext)
	if err := s.store.Bind(core.CtxDefault, "tcp", core.ContextEntry(tcpContext)); err != nil {
		return nil, err
	}
	s.srv = core.NewServer(proc, s.store, s, s.teamOpt...)
	if err := s.srv.Start(); err != nil {
		return nil, err
	}
	if err := proc.SetPid(kernel.ServiceInternet, proc.PID(), kernel.ScopeBoth); err != nil {
		return nil, err
	}
	return s, nil
}

// PID returns the server's process identifier.
func (s *Server) PID() kernel.PID { return s.proc.PID() }

// Err reports why the server stopped serving (see core.Server.Err).
func (s *Server) Err() error { return s.srv.Err() }

// RootPair returns the server's root context.
func (s *Server) RootPair() core.ContextPair { return s.srv.Pair(core.CtxDefault) }

// TCPPair returns the "tcp" connections context.
func (s *Server) TCPPair() core.ContextPair { return s.srv.Pair(tcpContext) }

// ConnCount returns the number of open connections.
func (s *Server) ConnCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

func (s *Server) describe(c *conn) proto.Descriptor {
	return proto.Descriptor{
		Tag:          proto.TagTCPConnection,
		ObjectID:     c.id,
		Name:         c.dest,
		Size:         uint32(c.sent + c.received),
		Perms:        proto.PermRead | proto.PermWrite,
		Modified:     uint64(c.opened),
		TypeSpecific: [2]uint32{uint32(c.sent), uint32(c.received)},
	}
}

// HandleNamed implements core.Handler. Connection names are the
// destination strings ("host:port"), which contain dots and colons the
// hierarchical separator convention never sees — name syntax under the
// protocol is server-defined (§5.1).
func (s *Server) HandleNamed(req *core.Request, res *core.Resolution) *proto.Message {
	switch req.Msg.Op {
	case proto.OpCreateInstance:
		mode := proto.OpenMode(req.Msg)
		if mode&proto.ModeDirectory != 0 {
			ctx, err := res.ContextOf()
			if err != nil {
				return core.ErrorReplyMsg(err)
			}
			pattern, err := proto.DirPattern(req.Msg)
			if err != nil {
				return core.ErrorReplyMsg(err)
			}
			return s.openDirectory(req.Proc(), ctx, res.Name, pattern)
		}
		if res.Final != tcpContext {
			return core.ErrorReplyMsg(fmt.Errorf("%w: connections live in the tcp context", proto.ErrNotFound))
		}
		if res.Entry == nil {
			if mode&proto.ModeCreate == 0 {
				return core.ErrorReplyMsg(proto.ErrNotFound)
			}
			return s.dial(req.Proc(), res.Last)
		}
		return s.openConn(res.Entry.Object.ID, res.Last)

	case proto.OpQueryObject:
		if res.Entry == nil || res.Entry.Object == nil {
			return core.ErrorReplyMsg(proto.ErrNotFound)
		}
		s.mu.Lock()
		c := s.conns[res.Entry.Object.ID]
		var d proto.Descriptor
		if c != nil {
			d = s.describe(c)
		}
		s.mu.Unlock()
		if c == nil {
			return core.ErrorReplyMsg(proto.ErrNotFound)
		}
		req.Proc().ChargeCompute(req.Proc().Kernel().Model().DescriptorFabricateCost)
		reply := core.OkReply()
		reply.Segment = d.AppendEncoded(nil)
		return reply

	case proto.OpRemoveObject:
		if res.Entry == nil || res.Entry.Object == nil {
			return core.ErrorReplyMsg(proto.ErrNotFound)
		}
		s.mu.Lock()
		delete(s.conns, res.Entry.Object.ID)
		s.mu.Unlock()
		if err := s.store.Unbind(tcpContext, res.Last); err != nil {
			return core.ErrorReplyMsg(err)
		}
		return core.OkReply()

	default:
		return core.ErrorReplyMsg(proto.ErrIllegalRequest)
	}
}

// HandleOp implements core.Handler.
func (s *Server) HandleOp(req *core.Request) *proto.Message {
	if reply := s.reg.HandleOp(req.Proc(), req.Msg); reply != nil {
		return reply
	}
	return core.ErrorReplyMsg(proto.ErrIllegalRequest)
}

// dial opens a new connection to dest.
func (s *Server) dial(p *kernel.Process, dest string) *proto.Message {
	s.mu.Lock()
	s.next++
	c := &conn{id: s.next, dest: dest, opened: p.Now()}
	s.conns[c.id] = c
	s.mu.Unlock()
	if err := s.store.Bind(tcpContext, dest, core.ObjectEntry(proto.TagTCPConnection, c.id)); err != nil {
		s.mu.Lock()
		delete(s.conns, c.id)
		s.mu.Unlock()
		return core.ErrorReplyMsg(err)
	}
	return s.openConn(c.id, dest)
}

func (s *Server) openConn(id uint32, name string) *proto.Message {
	s.mu.Lock()
	c := s.conns[id]
	s.mu.Unlock()
	if c == nil {
		return core.ErrorReplyMsg(proto.ErrNotFound)
	}
	iid, err := s.reg.Open(&connInstance{s: s, c: c}, name)
	if err != nil {
		return core.ErrorReplyMsg(err)
	}
	inst, _ := s.reg.Get(iid)
	info := inst.Info()
	info.ID = iid
	reply := core.OkReply()
	proto.SetInstanceInfo(reply, info)
	proto.SetInstanceOwner(reply, uint32(s.proc.PID()))
	return reply
}

func (s *Server) openDirectory(p *kernel.Process, ctx core.ContextID, name, pattern string) *proto.Message {
	if ctx == core.CtxDefault {
		// Root directory: one entry, the tcp context.
		records := []proto.Descriptor{{Tag: proto.TagDirectory, Name: "tcp", ObjectID: uint32(tcpContext)}}
		return s.replyDirectory(records, name)
	}
	s.mu.Lock()
	ids := make([]uint32, 0, len(s.conns))
	for id := range s.conns {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	records := make([]proto.Descriptor, 0, len(ids))
	for _, id := range ids {
		records = append(records, s.describe(s.conns[id]))
	}
	s.mu.Unlock()
	records = core.FilterRecords(records, pattern)
	model := p.Kernel().Model()
	p.ChargeCompute(time.Duration(len(records)) * model.DescriptorFabricateCost)
	return s.replyDirectory(records, name)
}

func (s *Server) replyDirectory(records []proto.Descriptor, name string) *proto.Message {
	iid, err := s.reg.Open(vio.NewDirectoryInstance(records, nil), name)
	if err != nil {
		return core.ErrorReplyMsg(err)
	}
	inst, _ := s.reg.Get(iid)
	info := inst.Info()
	info.ID = iid
	reply := core.OkReply()
	proto.SetInstanceInfo(reply, info)
	proto.SetInstanceOwner(reply, uint32(s.proc.PID()))
	return reply
}

// connInstance adapts a connection to the V I/O instance interface:
// writes send to the (simulated) remote end, reads drain the inbox.
type connInstance struct {
	s *Server
	c *conn
}

func (ci *connInstance) Info() proto.InstanceInfo {
	ci.s.mu.Lock()
	defer ci.s.mu.Unlock()
	return proto.InstanceInfo{
		SizeBytes: uint32(len(ci.c.inbox)),
		BlockSize: vio.DefaultBlockSize,
		Flags:     proto.ModeRead | proto.ModeWrite,
	}
}

// ReadAt drains from the inbox; offsets are ignored because a connection
// is a stream.
func (ci *connInstance) ReadAt(_ *kernel.Process, _ int64, buf []byte) (int, error) {
	ci.s.mu.Lock()
	defer ci.s.mu.Unlock()
	if len(ci.c.inbox) == 0 {
		return 0, proto.ErrEndOfFile
	}
	n := copy(buf, ci.c.inbox)
	ci.c.inbox = ci.c.inbox[n:]
	ci.c.received += uint64(n)
	return n, nil
}

func (ci *connInstance) WriteAt(p *kernel.Process, _ int64, data []byte) (int, error) {
	ci.s.mu.Lock()
	responder := ci.s.respond
	dest := ci.c.dest
	ci.s.mu.Unlock()
	// The remote round trip is charged at network cost.
	model := p.Kernel().Model()
	p.ChargeCompute(2 * model.RemoteHop(len(data)))
	back := responder(dest, data)
	ci.s.mu.Lock()
	defer ci.s.mu.Unlock()
	ci.c.sent += uint64(len(data))
	ci.c.inbox = append(ci.c.inbox, back...)
	return len(data), nil
}

func (ci *connInstance) Release() {}

var (
	_ vio.Instance = (*connInstance)(nil)
	_ core.Handler = (*Server)(nil)
)
