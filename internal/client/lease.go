// Lease-coherent name caching (PROTOCOL.md §13).
//
// The plain name cache (EnableNameCache) is the paper's §2.2 strawman:
// resolutions are cached forever and staleness surfaces as errors (or as
// periodic blind flushes in the workloads that bound it by hand). The
// lease cache replaces flush-by-timer with a coherence protocol: every
// cached resolution carries a virtual-time lease granted by the prefix
// server, expired entries revalidate instead of being flushed wholesale,
// absent names are cached negatively under the same leases, and the
// granting server invalidates holders by multicast callback when a
// binding changes — so a read can serve a dead mapping for at most the
// lease length, a bound the trace checker enforces (trace.CheckOptions
// LeaseBound).
package client

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/flight"
	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/namestat"
	"repro/internal/nametree"
	"repro/internal/prefix"
	"repro/internal/proto"
	"repro/internal/trace"
)

// LeaseStats counts lease-cache behaviour.
type LeaseStats struct {
	// Hits served a prefixed request straight from a valid lease.
	Hits int
	// Misses walked the prefix server because no entry existed.
	Misses int
	// NegativeHits answered a lookup of a known-absent name locally,
	// with no IPC at all.
	NegativeHits int
	// Renewals revalidated an entry whose lease had expired.
	Renewals int
	// Invalidations counts callback invalidations applied.
	Invalidations int
	// Stale counts uses of a leased pair whose server was gone before
	// any invalidation arrived (crash inside the lease window).
	Stale int
}

// leaseEntry is one lease-stamped resolution. A negative entry records
// the absence of the name: lookups are answered locally with ErrNotFound
// until the lease expires or a define invalidates it.
type leaseEntry struct {
	pair     core.ContextPair
	grant    time.Duration // client-observed grant time
	expire   time.Duration // absolute virtual-time expiry
	negative bool
}

// leaseCache is a session's lease-coherent name cache, keyed on the
// shared radix index (PROTOCOL.md §14): the session goroutine, the
// callback process and the engine classifiers (LeasedRoute/LeaseExpiry)
// all read lock-free off the COW root, so a classifier probing tens of
// thousands of draws never serializes against invalidations. Counters
// are atomics (the callback process bumps Invalidations concurrently
// with the session goroutine's hit path), read with the same torn-read
// snapshot discipline as the prefix server's.
type leaseCache struct {
	entries *nametree.Tree[leaseEntry]
	ctr     leaseCounters
	// rates tracks client-observed per-prefix churn: stale-window widths
	// measured at the point of failure (PROTOCOL.md §15).
	rates *namestat.Rates
	// callback receives OpCacheInvalidate from granting servers; its pid
	// rides every lease request so servers know whom to call back.
	callback *kernel.Process
}

// leaseCounters is the lock-free backing store for LeaseStats.
type leaseCounters struct {
	hits          atomic.Uint64
	misses        atomic.Uint64
	negativeHits  atomic.Uint64
	renewals      atomic.Uint64
	invalidations atomic.Uint64
	stale         atomic.Uint64
}

func (c *leaseCounters) load() LeaseStats {
	return LeaseStats{
		Hits:          int(c.hits.Load()),
		Misses:        int(c.misses.Load()),
		NegativeHits:  int(c.negativeHits.Load()),
		Renewals:      int(c.renewals.Load()),
		Invalidations: int(c.invalidations.Load()),
		Stale:         int(c.stale.Load()),
	}
}

// Snapshot returns a torn-read-resistant copy of the counters: each
// field is an atomic load, re-read until two consecutive passes agree
// (bounded, falling back to the last read under sustained traffic).
func (c *leaseCounters) Snapshot() LeaseStats {
	prev := c.load()
	for i := 0; i < 3; i++ {
		cur := c.load()
		if cur == prev {
			return cur
		}
		prev = cur
	}
	return prev
}

// lease lookup outcomes.
type leaseState int

const (
	leaseMiss leaseState = iota
	leaseHit
	leaseExpired
)

// EnableLeaseCache turns on lease-coherent caching of prefix
// resolutions: a callback process is spawned on the session's host to
// receive invalidations, and every prefix miss asks the prefix server
// for a lease-stamped direct reply. The granting server chooses the
// lease length (prefix.WithLease). The lease cache supersedes the plain
// name cache for prefixed names when both are enabled.
func (s *Session) EnableLeaseCache() error {
	if s.leases != nil {
		return nil
	}
	lc := &leaseCache{entries: nametree.New[leaseEntry](), rates: namestat.NewRates(0)}
	cb, err := s.proc.Host().Spawn(s.proc.Name()+"/lease-cb", func(p *kernel.Process) {
		lc.serveCallbacks(p)
	})
	if err != nil {
		return err
	}
	lc.callback = cb
	s.leases = lc
	return nil
}

// DisableLeaseCache turns the lease cache off and destroys its callback
// process (leaving any group memberships via the kernel's destroy path,
// so granting servers stop waiting on it).
func (s *Session) DisableLeaseCache() {
	if s.leases == nil {
		return
	}
	s.leases.callback.Destroy()
	s.leases = nil
}

// LeaseCacheStats returns a torn-read-resistant snapshot of the
// lease-cache counters.
func (s *Session) LeaseCacheStats() LeaseStats {
	if s.leases == nil {
		return LeaseStats{}
	}
	return s.leases.ctr.Snapshot()
}

// LeaseNameRates returns the session's client-side per-prefix churn
// estimates (stale-window widths observed at failure), sorted by name.
func (s *Session) LeaseNameRates() []namestat.RateItem {
	if s.leases == nil {
		return nil
	}
	return s.leases.rates.Snapshot()
}

// LeaseCallback returns the pid of the session's invalidation-callback
// process (NilPID when the lease cache is off).
func (s *Session) LeaseCallback() kernel.PID {
	if s.leases == nil {
		return kernel.NilPID
	}
	return s.leases.callback.PID()
}

// LeasedRoute reports where a prefixed name would be routed at virtual
// time `at` if the lease cache holds a valid positive lease for its
// prefix: the leased (server, context) pair and whether the lease is
// valid. Like CachedRoute it performs no IPC, charges no virtual time,
// and mutates nothing — it is the probe the sharded workload drivers'
// classifiers use, evaluated at the virtual time the operation will
// actually run (pre-think clock plus think time) so classifier and
// operation agree on expiry exactly.
func (s *Session) LeasedRoute(name string, at time.Duration) (core.ContextPair, bool) {
	if s.leases == nil {
		return core.ContextPair{}, false
	}
	pfx, _, err := cacheKey(name)
	if err != nil {
		return core.ContextPair{}, false
	}
	e, ok := s.leases.entries.Get(pfx)
	if !ok || e.negative || at >= e.expire {
		return core.ContextPair{}, false
	}
	return e.pair, true
}

// LeaseExpiry returns the absolute virtual-time expiry of the session's
// cached lease on name's prefix — positive or negative — if one exists.
// Like LeasedRoute it is a pure probe: no IPC, no virtual time, no
// mutation.
func (s *Session) LeaseExpiry(name string) (time.Duration, bool) {
	if s.leases == nil {
		return 0, false
	}
	pfx, _, err := cacheKey(name)
	if err != nil {
		return 0, false
	}
	e, ok := s.leases.entries.Get(pfx)
	if !ok {
		return 0, false
	}
	return e.expire, true
}

// serveCallbacks is the callback process body: it applies
// OpCacheInvalidate messages to the cache under its mutex and replies,
// which is what lets a granting server's SendGroupAll treat the
// invalidation as a barrier — when the define/delete returns, this
// holder has already dropped the entry.
func (lc *leaseCache) serveCallbacks(p *kernel.Process) {
	for {
		msg, from, err := p.Receive()
		if err != nil {
			return
		}
		reply := &proto.Message{Op: proto.ReplyOK}
		if msg.Op == proto.OpCacheInvalidate {
			name, _, derr := proto.CacheInvalidate(msg)
			if derr != nil {
				reply.Op = proto.ReplyBadArgs
			} else {
				lc.entries.Delete(name)
				lc.ctr.invalidations.Add(1)
				p.Kernel().Flight().Record(p.Now(), flight.KindInvalidate, name, p.Name(), "callback")
				if tr := p.Kernel().Tracer(); tr != nil {
					tr.Event(p.PendingSpan(from), trace.KindLease, "callback "+name, p.Now(), p.TraceID(), "")
				}
				p.Kernel().Metrics().Counter("client_lease_invalidations_total",
					metrics.Labels{Server: p.Name(), Class: "client"}).Inc()
			}
		} else {
			reply.Op = proto.ReplyIllegalRequest
		}
		if p.Reply(reply, from) != nil {
			return
		}
	}
}

// lookup classifies the cache's answer for pfx at virtual time now,
// dropping entries whose lease has lapsed (they are either re-granted by
// the revalidation that follows or gone).
func (lc *leaseCache) lookup(pfx string, now time.Duration) (leaseEntry, leaseState) {
	e, ok := lc.entries.Get(pfx)
	if !ok {
		return leaseEntry{}, leaseMiss
	}
	if now >= e.expire {
		lc.entries.Delete(pfx)
		return e, leaseExpired
	}
	return e, leaseHit
}

func (lc *leaseCache) store(pfx string, e leaseEntry) {
	lc.entries.Insert(pfx, e)
}

func (lc *leaseCache) drop(pfx string) {
	lc.entries.Delete(pfx)
}

// leaseMetric resolves a lease counter labelled with this session's
// process name and the client tier.
func (s *Session) leaseMetric(name string) *metrics.Counter {
	return s.proc.Kernel().Metrics().Counter(name, metrics.Labels{Server: s.proc.Name(), Class: "client"})
}

// leaseEvent records a zero-length lease span carrying the entry's stamp.
func (s *Session) leaseEvent(event, pfx string, at time.Duration, e leaseEntry) {
	tr := s.proc.Kernel().Tracer()
	if tr == nil {
		return
	}
	sp := tr.Event(s.proc.CurrentSpan(), trace.KindLease, event+" "+pfx, at, s.proc.TraceID(), "")
	tr.SetLease(sp, e.grant, e.expire)
}

// sendLeased routes a prefixed request through the lease cache: a valid
// positive lease sends straight to the leased pair, a valid negative
// lease answers locally, and anything else revalidates through the
// prefix server with a lease request. The validity check happens at the
// clock's value on entry — before any compute is charged — which is the
// same instant LeasedRoute probes, so the engine classifiers predict
// this routing exactly.
func (s *Session) sendLeased(name string, req *proto.Message, mayRetry bool) (*proto.Message, error) {
	pfx, rest, err := cacheKey(name)
	if err != nil {
		return nil, fmt.Errorf("%q: %w", name, err)
	}
	now := s.proc.Now()
	entry, state := s.leases.lookup(pfx, now)

	if state == leaseHit && entry.negative {
		// The name is known absent: answer locally. The stub still costs
		// its constant — the library ran — but no message leaves the host.
		s.leases.ctr.negativeHits.Add(1)
		s.leaseMetric("client_lease_negative_hits_total").Inc()
		s.leaseEvent("negative-hit", pfx, now, entry)
		s.proc.ChargeCompute(s.proc.Kernel().Model().ClientStubCost)
		return nil, fmt.Errorf("%q: %w", name, proto.ErrNotFound)
	}

	if state == leaseHit {
		s.leases.ctr.hits.Add(1)
		s.leaseMetric("client_lease_hits_total").Inc()
		s.leaseEvent("hit", pfx, now, entry)
	} else {
		// Miss or lapsed lease: revalidate through the prefix server,
		// asking for a fresh lease.
		if state == leaseExpired {
			s.leases.ctr.renewals.Add(1)
			s.leaseMetric("client_lease_renewals_total").Inc()
			s.leaseEvent("expired", pfx, now, entry)
			s.proc.Kernel().Flight().Record(now, flight.KindLeaseRenew, pfx, s.proc.Name(), "expired")
		} else {
			s.leases.ctr.misses.Add(1)
			s.leaseMetric("client_lease_misses_total").Inc()
		}
		mreq := &proto.Message{Op: proto.OpMapContext}
		proto.SetCSName(mreq, uint32(core.CtxDefault), prefix.Quote(pfx))
		proto.SetLeaseRequest(mreq, uint32(s.leases.callback.PID()))
		s.proc.ChargeCompute(s.proc.Kernel().Model().ClientStubCost)
		mreply, err := s.proc.Send(mreq, s.prefixServer)
		if err != nil {
			return nil, fmt.Errorf("%q: %w", name, err)
		}
		granted := s.proc.Now()
		if err := s.replyErr(mreply); err != nil {
			// A stamped NotFound is a negative lease: cache the absence.
			if expire, ok := proto.LeaseGrant(mreply); ok && mreply.Op == proto.ReplyNotFound {
				ne := leaseEntry{grant: granted, expire: time.Duration(expire), negative: true}
				s.leases.store(pfx, ne)
				s.leaseEvent("grant", pfx, granted, ne)
			}
			return nil, fmt.Errorf("%q: %w", name, err)
		}
		pid, ctx := proto.GetMapContextReply(mreply)
		entry = leaseEntry{
			pair:  core.ContextPair{Server: kernel.PID(pid), Ctx: core.ContextID(ctx)},
			grant: granted,
		}
		if expire, ok := proto.LeaseGrant(mreply); ok {
			entry.expire = time.Duration(expire)
			s.leases.store(pfx, entry)
			if state == leaseExpired {
				s.leaseEvent("renew", pfx, granted, entry)
			} else {
				s.leaseEvent("grant", pfx, granted, entry)
			}
		}
		// An unstamped reply (a prefix server without lease support) is
		// used for this request but not cached: without a callback
		// registration, caching it would reintroduce unbounded staleness.
	}

	proto.SetCSName(req, uint32(entry.pair.Ctx), name[rest:])
	s.lastRouted = entry.pair.Server
	s.proc.ChargeCompute(s.proc.Kernel().Model().ClientStubCost)
	reply, err := s.proc.Send(req, entry.pair.Server)
	if err != nil {
		// The leased server died inside the lease window, before any
		// invalidation could be delivered. Drop the lease and revalidate
		// once — bounded staleness, visible as a Stale count, journaled
		// as a failover, and measured: the window's width (failure time
		// minus grant) feeds the client's churn estimator (§15).
		s.leases.ctr.stale.Add(1)
		s.leaseMetric("client_lease_stale_total").Inc()
		failedAt := s.proc.Now()
		s.leases.rates.ObserveStaleWindow(pfx, failedAt-entry.grant)
		s.proc.Kernel().Flight().Record(failedAt, flight.KindFailover, pfx, s.proc.Name(), "stale")
		s.leases.drop(pfx)
		if mayRetry {
			return s.sendLeased(name, req, false)
		}
		return nil, fmt.Errorf("%q (stale leased resolution): %w", name, err)
	}
	if err := s.replyErr(reply); err != nil {
		return nil, fmt.Errorf("%q: %w", name, err)
	}
	return reply, nil
}
