package client_test

import (
	"errors"
	"testing"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/proto"
	"repro/internal/rig"
	"repro/internal/vtime"
)

func bootResilient(t *testing.T) *rig.Rig {
	t.Helper()
	cfg := rig.DefaultConfig()
	policy := client.DefaultRetryPolicy()
	cfg.Retry = &policy
	r, err := rig.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// makeFS2Replica turns FS2 into a true storage replica for the standard
// programs context, so dynamic [bin] bindings can fail over to it.
func makeFS2Replica(t *testing.T, r *rig.Rig) {
	t.Helper()
	if err := r.FS2.SetWellKnown(core.CtxStdPrograms, "/bin"); err != nil {
		t.Fatal(err)
	}
	data, err := r.WS[0].Session.ReadFile("[bin]hello")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.FS2.WriteFile("/bin/hello", "system", data); err != nil {
		t.Fatal(err)
	}
}

func TestRetryRecoversFromTransientOutage(t *testing.T) {
	// Total loss fails an attempt; the backoff observer (standing in for
	// the chaos engine) ends the outage, and the retry succeeds — one
	// failover, no error surfaced to the caller.
	r := bootResilient(t)
	s := r.WS[0].Session

	r.Net.SetDropRate(1.0)
	s.SetRetryObserver(func(_ vtime.Time) { r.Net.SetDropRate(0) })

	if _, err := s.ReadFile("[home]welcome.txt"); err != nil {
		t.Fatalf("read across transient outage: %v", err)
	}
	st := s.ResilienceStats()
	if st.Retries == 0 || st.Failovers == 0 {
		t.Fatalf("recovery not recorded: %+v", st)
	}
	if st.OpsFailed != 0 {
		t.Fatalf("no operation should have failed: %+v", st)
	}
	if st.Downtime == 0 {
		t.Fatalf("backoff must be charged as downtime: %+v", st)
	}
}

func TestDynamicBindingFailsOverToReplica(t *testing.T) {
	// FS1 dies; the next use of the dynamic [bin] binding resolves to the
	// FS2 replica via GetPid — transparent failover, counted as a rebind
	// by the prefix server (§4.2).
	r := bootResilient(t)
	s := r.WS[0].Session
	makeFS2Replica(t, r)

	r.FS1Host.Crash()
	if _, err := s.ReadFile("[bin]hello"); err != nil {
		t.Fatalf("read after failover: %v", err)
	}
	if st := r.WS[0].Prefix.Stats(); st.Rebinds == 0 {
		t.Fatalf("prefix server should count the rebind: %+v", st)
	}
}

func TestResilienceRecoversNaiveCacheStaleness(t *testing.T) {
	// A8 shows the naive name cache fails forever on stale entries. The
	// recovery policy's between-attempt rebind drops the stale entry, so
	// with resilience enabled even the naive cache recovers.
	r := bootResilient(t)
	s := r.WS[0].Session
	makeFS2Replica(t, r)
	s.EnableNameCache(false)

	if _, err := s.ReadFile("[bin]hello"); err != nil {
		t.Fatal(err)
	}
	r.FS1Host.Crash()
	if _, err := s.ReadFile("[bin]hello"); err != nil {
		t.Fatalf("read with stale cache entry: %v", err)
	}
	st := s.ResilienceStats()
	if st.Rebinds == 0 || st.Failovers == 0 {
		t.Fatalf("rebind not recorded: %+v", st)
	}
	if cs := s.NameCacheStats(); cs.Stale == 0 {
		t.Fatalf("staleness should have been observed: %+v", cs)
	}
}

func TestRetryBudgetBoundedOnPermanentFailure(t *testing.T) {
	// A permanently-dead static binding exhausts the retry budget and
	// surfaces the transport error — bounded attempts, not forever.
	r := bootResilient(t)
	s := r.WS[0].Session
	policy := client.DefaultRetryPolicy()

	r.FS2Host.Crash()
	_, err := s.ReadFile("[storage2]/archive/2026/paper.mss")
	if !errors.Is(err, kernel.ErrNonexistentProcess) {
		t.Fatalf("err = %v", err)
	}
	st := s.ResilienceStats()
	if st.Retries != policy.MaxAttempts-1 {
		t.Fatalf("retries = %d, want %d", st.Retries, policy.MaxAttempts-1)
	}
	if st.OpsFailed == 0 {
		t.Fatalf("failure must be recorded: %+v", st)
	}
}

func TestNonRetryableErrorFailsFast(t *testing.T) {
	// Name-level failures are terminal: no retries, no backoff charge.
	r := bootResilient(t)
	s := r.WS[0].Session
	if _, err := s.ReadFile("[home]no-such-file.txt"); !errors.Is(err, proto.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	st := s.ResilienceStats()
	if st.Retries != 0 || st.Downtime != 0 {
		t.Fatalf("not-found must not retry: %+v", st)
	}
}

func TestSurveyPrefixesGracefulDegradation(t *testing.T) {
	// One crashed server must not hide the other prefixes: the survey
	// returns every entry, with a per-entry error only for the dead one.
	r := bootResilient(t)
	s := r.WS[0].Session
	r.FS2Host.Crash()

	entries, err := s.SurveyPrefixes()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("survey returned nothing")
	}
	dead := map[string]bool{}
	for _, e := range entries {
		if e.Err != nil {
			dead[e.Descriptor.Name] = true
		}
	}
	if !dead["storage2"] {
		t.Fatalf("storage2 should be reported dead; dead = %v", dead)
	}
	if len(dead) != 1 {
		t.Fatalf("only storage2 should be dead; dead = %v", dead)
	}
}
