// Package client implements the V-System standard run-time routines for
// naming and I/O (§6): the procedural interface application programs use,
// hiding the message protocol.
//
// A Session carries a program's naming state: the pid of the user's
// context prefix server and the current context. Every CSname routine
// funnels through one common routing check — a name starting with '[' goes
// to the workstation's context prefix server, anything else is sent
// directly to the server implementing the current context, which is what
// makes current-context access cheap (§6).
package client

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/prefix"
	"repro/internal/proto"
	"repro/internal/vio"
)

// Session is one program's naming state.
type Session struct {
	proc         *kernel.Process
	prefixServer kernel.PID
	current      core.ContextPair
	user         string

	// nameCache, when non-nil, caches prefix resolutions client-side and
	// bypasses the prefix server on hits — the design §2.2 argues
	// *against* ("caching the name in the client would introduce
	// inconsistency problems and only benefit the few applications that
	// reuse names"). It exists so the A8 experiment can quantify both
	// halves of that sentence.
	nameCache  map[string]core.ContextPair
	cacheRetry bool
	cacheStats CacheStats

	// leases, when non-nil, is the lease-coherent cache (lease.go): the
	// answer to the §2.2 inconsistency objection the naive nameCache
	// embodies. It takes precedence over nameCache for prefixed names.
	leases *leaseCache

	// lastRouted records the server pid the most recent send()-routed
	// attempt actually targeted. With the name cache on, a prefixed
	// request goes straight to the cached pair's server — not the prefix
	// server s.route() reports — so fallbacks that need "the server the
	// request went to" must read this, not re-route the name.
	lastRouted kernel.PID

	// currentName is the CSname the current context was entered by, kept
	// so the recovery policy can re-map the context if its server dies
	// (resilience.go). Empty when the context was installed directly.
	currentName string
	// leaderHint is the successor pid carried by the most recent
	// ReplyNotLeader redirect from a replication-group front (PROTOCOL.md
	// §11); the recovery policy's rebind consumes it (resilience.go).
	leaderHint kernel.PID
	// recovery, when non-nil, applies the session's retry/rebind policy
	// to every operation (resilience.go).
	recovery *resilience
}

// CacheStats counts name-cache behaviour for the A8 experiment.
type CacheStats struct {
	Hits   int
	Misses int
	// Stale counts uses of a cached pair whose server was gone — the
	// §2.2 inconsistency made visible.
	Stale int
}

// New builds a session for a program running as proc, using the given
// context prefix server and initial current context.
func New(proc *kernel.Process, prefixServer kernel.PID, initial core.ContextPair, user string) *Session {
	return &Session{proc: proc, prefixServer: prefixServer, current: initial, user: user}
}

// Proc returns the session's process.
func (s *Session) Proc() *kernel.Process { return s.proc }

// User returns the session's user name.
func (s *Session) User() string { return s.user }

// Current returns the current context, the per-program state that makes
// relative naming cheap.
func (s *Session) Current() core.ContextPair { return s.current }

// SetCurrent installs a context pair directly (programs inherit their
// current context this way at startup, §6).
func (s *Session) SetCurrent(pair core.ContextPair) { s.current = pair }

// SetCurrentName records the CSname the current context corresponds to,
// for sessions whose context pair was installed directly rather than via
// ChangeContext. The recovery policy uses it to re-map a current context
// whose server has died.
func (s *Session) SetCurrentName(name string) { s.currentName = name }

// PrefixServer returns the session's context prefix server pid.
func (s *Session) PrefixServer() kernel.PID { return s.prefixServer }

// route decides where a CSname request goes: the single common routine
// that checks for the standard context prefix character (§6).
func (s *Session) route(name string) (server kernel.PID, ctx core.ContextID) {
	if prefix.HasPrefix(name) {
		return s.prefixServer, core.CtxDefault
	}
	return s.current.Server, s.current.Ctx
}

// EnableNameCache turns on client-side caching of prefix resolutions.
// With retryOnError, a use of a stale entry is retried once through the
// prefix server; without it, stale entries surface as errors until
// FlushNameCache.
func (s *Session) EnableNameCache(retryOnError bool) {
	s.nameCache = make(map[string]core.ContextPair)
	s.cacheRetry = retryOnError
}

// DisableNameCache turns the cache off.
func (s *Session) DisableNameCache() { s.nameCache = nil }

// FlushNameCache drops every resolution of the plain (non-leased) name
// cache — the blind flush-by-timer staleness bound workloads used before
// leases. The lease cache (EnableLeaseCache) never needs it: leased
// entries revalidate individually when their lease lapses and are
// dropped by callback invalidation when a binding changes, so this
// routine deliberately leaves them alone. It survives as the compat knob
// behind SharedPrefixConfig.FlushEvery and the A8/A14 ablations that
// quantify what flush-by-timer costs.
func (s *Session) FlushNameCache() {
	if s.nameCache != nil {
		s.nameCache = make(map[string]core.ContextPair)
	}
}

// NameCacheStats returns the cache counters.
func (s *Session) NameCacheStats() CacheStats { return s.cacheStats }

// CachedRoute reports where a prefixed name would be routed right now if
// the name cache resolves it: the cached (server, context) pair and
// whether the cache holds the name's prefix. It performs no IPC and
// charges no virtual time — it is the probe the sharded workload
// drivers' operation classifiers use to predict whether the next request
// stays on a cached direct route (a candidate for lane-confined
// execution) or must walk the prefix server (shared substrate).
func (s *Session) CachedRoute(name string) (core.ContextPair, bool) {
	if s.nameCache == nil {
		return core.ContextPair{}, false
	}
	pfx, _, err := cacheKey(name)
	if err != nil {
		return core.ContextPair{}, false
	}
	pair, ok := s.nameCache[pfx]
	return pair, ok
}

// replyErr converts a reply message into an operation error, first
// capturing the leader hint a ReplyNotLeader redirect carries so the next
// attempt can re-route to the successor without rediscovery
// (resilience.go). Every reply-inspecting routine funnels through it.
func (s *Session) replyErr(reply *proto.Message) error {
	if reply.Op == proto.ReplyNotLeader {
		s.leaderHint = kernel.PID(proto.LeaderHint(reply))
	}
	return core.ReplyToError(reply)
}

// metric resolves a registry counter labelled with this session's process
// name. Updates run on the client's own goroutine, so they are always
// ordered before the operation's result is observed (metrics package doc).
func (s *Session) metric(name string) *metrics.Counter {
	return s.proc.Kernel().Metrics().Counter(name, metrics.Labels{Server: s.proc.Name()})
}

// send charges the client stub cost, routes, and performs the
// transaction under the session's recovery policy: each attempt re-routes
// the name, so a retry picks up re-resolved bindings.
func (s *Session) send(name string, req *proto.Message) (*proto.Message, error) {
	var reply *proto.Message
	err := s.withRecovery(name, func() (e error) {
		reply, e = s.sendOnce(name, req)
		return
	})
	return reply, err
}

// sendOnce is one attempt of send.
func (s *Session) sendOnce(name string, req *proto.Message) (*proto.Message, error) {
	if s.leases != nil && prefix.HasPrefix(name) {
		return s.sendLeased(name, req, true)
	}
	if s.nameCache != nil && prefix.HasPrefix(name) {
		return s.sendCached(name, req)
	}
	server, ctx := s.route(name)
	s.lastRouted = server
	proto.SetCSName(req, uint32(ctx), name)
	s.proc.ChargeCompute(s.proc.Kernel().Model().ClientStubCost)
	reply, err := s.proc.Send(req, server)
	if err != nil {
		return nil, fmt.Errorf("%q: %w", name, err)
	}
	if err := s.replyErr(reply); err != nil {
		return nil, fmt.Errorf("%q: %w", name, err)
	}
	return reply, nil
}

// sendCached routes a prefixed request around the prefix server using a
// cached (server-pid, context-id) resolution of its prefix.
func (s *Session) sendCached(name string, req *proto.Message) (*proto.Message, error) {
	return s.sendCachedAttempt(name, req, true)
}

// cacheKey derives the name-cache key for a prefixed CSname: the parsed
// prefix (the key itself) and the index where the server-relative
// remainder of the name begins.
func cacheKey(name string) (pfx string, rest int, err error) {
	if !prefix.HasPrefix(name) {
		return "", 0, fmt.Errorf("%w: %q has no context prefix", proto.ErrBadArgs, name)
	}
	return prefix.Parse(name, 0)
}

func (s *Session) sendCachedAttempt(name string, req *proto.Message, mayRetry bool) (*proto.Message, error) {
	pfx, rest, err := cacheKey(name)
	if err != nil {
		return nil, fmt.Errorf("%q: %w", name, err)
	}
	pair, ok := s.nameCache[pfx]
	if !ok {
		s.cacheStats.Misses++
		s.metric("client_cache_misses_total").Inc()
		mreq := &proto.Message{Op: proto.OpMapContext}
		proto.SetCSName(mreq, uint32(core.CtxDefault), prefix.Quote(pfx))
		s.proc.ChargeCompute(s.proc.Kernel().Model().ClientStubCost)
		mreply, err := s.proc.Send(mreq, s.prefixServer)
		if err != nil {
			return nil, fmt.Errorf("%q: %w", name, err)
		}
		if err := s.replyErr(mreply); err != nil {
			return nil, fmt.Errorf("%q: %w", name, err)
		}
		pid, ctx := proto.GetMapContextReply(mreply)
		pair = core.ContextPair{Server: kernel.PID(pid), Ctx: core.ContextID(ctx)}
		s.nameCache[pfx] = pair
	} else {
		s.cacheStats.Hits++
		s.metric("client_cache_hits_total").Inc()
	}
	proto.SetCSName(req, uint32(pair.Ctx), name[rest:])
	s.lastRouted = pair.Server
	s.proc.ChargeCompute(s.proc.Kernel().Model().ClientStubCost)
	reply, err := s.proc.Send(req, pair.Server)
	if err != nil {
		// The cached resolution outlived its server: the inconsistency
		// §2.2 predicts. The naive cache keeps the stale entry (it has
		// no way to know the failure was the cache's fault); the
		// invalidate-and-retry variant drops it and re-resolves once.
		s.cacheStats.Stale++
		s.metric("client_cache_stale_total").Inc()
		if s.cacheRetry && mayRetry {
			delete(s.nameCache, pfx)
			return s.sendCachedAttempt(name, req, false)
		}
		return nil, fmt.Errorf("%q (stale cached resolution): %w", name, err)
	}
	if err := s.replyErr(reply); err != nil {
		return nil, fmt.Errorf("%q: %w", name, err)
	}
	return reply, nil
}

// sendTo is send with an explicit destination (non-name operations).
// Recovery here only waits out transient unreachability — there is no
// name to re-resolve a fixed pid by.
func (s *Session) sendTo(server kernel.PID, req *proto.Message) (*proto.Message, error) {
	var reply *proto.Message
	err := s.withRecovery("", func() (e error) {
		reply, e = s.sendToOnce(server, req)
		return
	})
	return reply, err
}

func (s *Session) sendToOnce(server kernel.PID, req *proto.Message) (*proto.Message, error) {
	s.proc.ChargeCompute(s.proc.Kernel().Model().ClientStubCost)
	reply, err := s.proc.Send(req, server)
	if err != nil {
		return nil, err
	}
	if err := s.replyErr(reply); err != nil {
		return nil, err
	}
	return reply, nil
}

// Open opens the named file-like object and returns its instance (§6's
// Open routine). The mode is a proto.Mode* bitmask.
func (s *Session) Open(name string, mode uint32) (*vio.File, error) {
	req := &proto.Message{Op: proto.OpCreateInstance}
	proto.SetOpenMode(req, mode)
	reply, err := s.send(name, req)
	if err != nil {
		return nil, err
	}
	// The route the successful attempt actually used (recovery retries
	// re-route, and the name cache sends straight to the cached pair's
	// server — re-routing here would wrongly yield the prefix server).
	server := s.lastRouted
	// When the open was forwarded (through the prefix server or across
	// file servers) the instance lives at the final server. The reply's
	// sender is not visible at this layer, so servers return instances
	// valid at the pid the reply carries; for directly-routed opens that
	// is the routed server.
	info := proto.GetInstanceInfo(reply)
	owner := kernel.PID(proto.InstanceOwner(reply))
	if owner == kernel.NilPID {
		owner = server
	}
	return vio.NewFile(s.proc, owner, info), nil
}

// OpenDirectory opens the context directory of the named context (§5.6).
func (s *Session) OpenDirectory(name string) (*vio.File, error) {
	return s.Open(name, proto.ModeRead|proto.ModeDirectory)
}

// List reads the context directory of the named context and decodes its
// description records.
func (s *Session) List(name string) ([]proto.Descriptor, error) {
	f, err := s.OpenDirectory(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	raw, err := f.ReadAll()
	if err != nil {
		return nil, err
	}
	return proto.DecodeDescriptors(raw)
}

// ListPattern reads the named context directory with a server-side match
// pattern ('*' and '?' globbing): only matching objects are collated and
// transmitted — the §5.6 extension.
func (s *Session) ListPattern(name, pattern string) ([]proto.Descriptor, error) {
	var reply *proto.Message
	var owner kernel.PID
	err := s.withRecovery(name, func() error {
		// Re-encode per attempt: SetCSName resets the segment the pattern
		// is appended to, and routing may change after a rebind.
		req := &proto.Message{Op: proto.OpCreateInstance}
		server, ctx := s.route(name)
		proto.SetCSName(req, uint32(ctx), name)
		proto.SetOpenMode(req, proto.ModeRead|proto.ModeDirectory)
		proto.SetDirPattern(req, pattern)
		s.proc.ChargeCompute(s.proc.Kernel().Model().ClientStubCost)
		r, err := s.proc.Send(req, server)
		if err != nil {
			return fmt.Errorf("%q: %w", name, err)
		}
		if err := s.replyErr(r); err != nil {
			return fmt.Errorf("%q: %w", name, err)
		}
		reply = r
		if owner = kernel.PID(proto.InstanceOwner(r)); owner == kernel.NilPID {
			owner = server
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	f := vio.NewFile(s.proc, owner, proto.GetInstanceInfo(reply))
	defer f.Close()
	raw, err := f.ReadAll()
	if err != nil {
		return nil, err
	}
	return proto.DecodeDescriptors(raw)
}

// ListPrefixes reads the context directory of the user's prefix server —
// the per-user table of top-level context prefixes (§6).
func (s *Session) ListPrefixes() ([]proto.Descriptor, error) {
	req := &proto.Message{Op: proto.OpCreateInstance}
	proto.SetCSName(req, uint32(core.CtxDefault), "")
	proto.SetOpenMode(req, proto.ModeRead|proto.ModeDirectory)
	reply, err := s.sendTo(s.prefixServer, req)
	if err != nil {
		return nil, err
	}
	f := vio.NewFile(s.proc, s.prefixServer, proto.GetInstanceInfo(reply))
	defer f.Close()
	raw, err := f.ReadAll()
	if err != nil {
		return nil, err
	}
	return proto.DecodeDescriptors(raw)
}

// ReadFile opens, reads and closes the named file.
func (s *Session) ReadFile(name string) ([]byte, error) {
	f, err := s.Open(name, proto.ModeRead)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return f.ReadAll()
}

// WriteFile creates or truncates the named file with the given contents.
func (s *Session) WriteFile(name string, data []byte) error {
	f, err := s.Open(name, proto.ModeRead|proto.ModeWrite|proto.ModeCreate|proto.ModeTruncate)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Query returns the typed description record of the named object (§5.5).
func (s *Session) Query(name string) (proto.Descriptor, error) {
	req := &proto.Message{Op: proto.OpQueryObject}
	reply, err := s.send(name, req)
	if err != nil {
		return proto.Descriptor{}, err
	}
	d, _, err := proto.DecodeDescriptor(reply.Segment)
	return d, err
}

// Modify overwrites the modifiable fields of the named object's
// description (§5.5).
func (s *Session) Modify(name string, d proto.Descriptor) error {
	return s.withRecovery(name, func() error {
		req := &proto.Message{Op: proto.OpModifyObject}
		server, ctx := s.route(name)
		proto.SetCSName(req, uint32(ctx), name)
		req.Segment = d.AppendEncoded(req.Segment)
		s.proc.ChargeCompute(s.proc.Kernel().Model().ClientStubCost)
		reply, err := s.proc.Send(req, server)
		if err != nil {
			return fmt.Errorf("%q: %w", name, err)
		}
		return s.replyErr(reply)
	})
}

// Remove deletes the named object.
func (s *Session) Remove(name string) error {
	req := &proto.Message{Op: proto.OpRemoveObject}
	_, err := s.send(name, req)
	return err
}

// Rename gives the named object a new name on the same server. When both
// names carry the same context prefix, the prefix is stripped from the
// new name so the final server interprets it in the same rewritten
// context.
func (s *Session) Rename(oldName, newName string) error {
	if prefix.HasPrefix(oldName) && prefix.HasPrefix(newName) {
		oldPfx, _, err := prefix.Parse(oldName, 0)
		if err != nil {
			return err
		}
		newPfx, rest, err := prefix.Parse(newName, 0)
		if err != nil {
			return err
		}
		if oldPfx != newPfx {
			return fmt.Errorf("%w: rename across context prefixes", proto.ErrIllegalRequest)
		}
		newName = newName[rest:]
	}
	return s.withRecovery(oldName, func() error {
		req := &proto.Message{Op: proto.OpRenameObject}
		server, ctx := s.route(oldName)
		proto.SetRenameNames(req, uint32(ctx), oldName, newName)
		s.proc.ChargeCompute(s.proc.Kernel().Model().ClientStubCost)
		reply, err := s.proc.Send(req, server)
		if err != nil {
			return fmt.Errorf("%q: %w", oldName, err)
		}
		return s.replyErr(reply)
	})
}

// MakeContext creates a new (empty) context with the given name — a
// directory-mode create, the protocol's mkdir.
func (s *Session) MakeContext(name string) error {
	f, err := s.Open(name, proto.ModeRead|proto.ModeDirectory|proto.ModeCreate)
	if err != nil {
		return err
	}
	return f.Close()
}

// Link gives the named file an additional name on the same server — the
// aliasing that makes the §6 inverse mapping many-to-one. Prefix handling
// follows Rename: a shared prefix is stripped from the new name.
func (s *Session) Link(oldName, newName string) error {
	if prefix.HasPrefix(oldName) && prefix.HasPrefix(newName) {
		oldPfx, _, err := prefix.Parse(oldName, 0)
		if err != nil {
			return err
		}
		newPfx, rest, err := prefix.Parse(newName, 0)
		if err != nil {
			return err
		}
		if oldPfx != newPfx {
			return fmt.Errorf("%w: alias across context prefixes", proto.ErrIllegalRequest)
		}
		newName = newName[rest:]
	}
	return s.withRecovery(oldName, func() error {
		req := &proto.Message{Op: proto.OpLinkObject}
		server, ctx := s.route(oldName)
		proto.SetRenameNames(req, uint32(ctx), oldName, newName)
		s.proc.ChargeCompute(s.proc.Kernel().Model().ClientStubCost)
		reply, err := s.proc.Send(req, server)
		if err != nil {
			return fmt.Errorf("%q: %w", oldName, err)
		}
		return s.replyErr(reply)
	})
}

// MapContext resolves a name to a fully-qualified context pair (§5.7).
func (s *Session) MapContext(name string) (core.ContextPair, error) {
	req := &proto.Message{Op: proto.OpMapContext}
	reply, err := s.send(name, req)
	if err != nil {
		return core.ContextPair{}, err
	}
	pid, ctx := proto.GetMapContextReply(reply)
	return core.ContextPair{Server: kernel.PID(pid), Ctx: core.ContextID(ctx)}, nil
}

// ChangeContext changes the current context to the named context — the
// analogue of Unix chdir (§6).
func (s *Session) ChangeContext(name string) error {
	pair, err := s.MapContext(name)
	if err != nil {
		return err
	}
	s.current = pair
	s.currentName = name
	return nil
}

// AddName defines a context prefix at the user's prefix server, bound
// statically to a context pair (§5.7 optional operation).
func (s *Session) AddName(prefixName string, target core.ContextPair) error {
	req := &proto.Message{Op: proto.OpAddContextName}
	proto.SetCSName(req, 0, prefixName)
	proto.SetAddContextTarget(req, uint32(target.Server), uint32(target.Ctx))
	_, err := s.sendTo(s.prefixServer, req)
	return err
}

// AddDynamicName defines a context prefix bound to a
// (service, well-known-context) pair, re-resolved with GetPid per use
// (§6).
func (s *Session) AddDynamicName(prefixName string, service kernel.Service, wellKnown core.ContextID) error {
	req := &proto.Message{Op: proto.OpAddContextName}
	proto.SetCSName(req, 0, prefixName)
	proto.SetAddContextDynamicTarget(req, uint32(service), uint32(wellKnown))
	_, err := s.sendTo(s.prefixServer, req)
	return err
}

// DeleteName removes a context prefix definition.
func (s *Session) DeleteName(prefixName string) error {
	req := &proto.Message{Op: proto.OpDeleteContextName}
	proto.SetCSName(req, 0, prefixName)
	_, err := s.sendTo(s.prefixServer, req)
	return err
}

// AddLink binds a name on a file server to a context on another server —
// the cross-server pointer of Figure 4.
func (s *Session) AddLink(name string, target core.ContextPair) error {
	req := &proto.Message{Op: proto.OpAddContextName}
	proto.SetAddContextTarget(req, uint32(target.Server), uint32(target.Ctx))
	_, err := s.send(name, req)
	return err
}

// Unlink removes the binding of the named cross-server link (or other
// context name) without following it — OpDeleteContextName interpreted at
// the server holding the binding (§5.7).
func (s *Session) Unlink(name string) error {
	req := &proto.Message{Op: proto.OpDeleteContextName}
	_, err := s.send(name, req)
	return err
}

// LoadProgram transfers the named program image into buf via MoveTo,
// returning the number of bytes loaded — the diskless workstation program
// load (§3.1).
func (s *Session) LoadProgram(name string, buf []byte) (int, error) {
	var n int
	err := s.withRecovery(name, func() error {
		req := &proto.Message{Op: proto.OpLoadProgram}
		server, ctx := s.route(name)
		proto.SetCSName(req, uint32(ctx), name)
		s.proc.ChargeCompute(s.proc.Kernel().Model().ClientStubCost)
		reply, err := s.proc.SendMove(req, server, nil, buf)
		if err != nil {
			return fmt.Errorf("%q: %w", name, err)
		}
		if err := s.replyErr(reply); err != nil {
			return fmt.Errorf("%q: %w", name, err)
		}
		n = int(reply.F[3])
		return nil
	})
	return n, err
}

// Exec asks a program manager to execute the named program — e.g.
// "[exec]editor" through the prefix server, or a plain name in a current
// context served by a program manager. The invoker's naming environment
// (prefix server and current context) travels with the request, so the
// program starts with the invoker's current context (§6). It returns the
// program's name in the programs-in-execution context and its pid.
func (s *Session) Exec(name string) (progName string, pid kernel.PID, err error) {
	err = s.withRecovery(name, func() error {
		req := &proto.Message{Op: proto.OpExecProgram}
		server, ctx := s.route(name)
		proto.SetCSName(req, uint32(ctx), name)
		proto.SetExecEnvironment(req, uint32(s.prefixServer), uint32(s.current.Server), uint32(s.current.Ctx))
		s.proc.ChargeCompute(s.proc.Kernel().Model().ClientStubCost)
		reply, err := s.proc.Send(req, server)
		if err != nil {
			return fmt.Errorf("%q: %w", name, err)
		}
		if err := s.replyErr(reply); err != nil {
			return fmt.Errorf("%q: %w", name, err)
		}
		progName, pid = string(reply.Segment), kernel.PID(reply.F[1])
		return nil
	})
	if err != nil {
		return "", kernel.NilPID, err
	}
	return progName, pid, nil
}

// CurrentName reconstructs a CSname for the current context — the §6
// inverse mapping, with its documented imperfections: it asks the current
// server to name the context id, then the prefix server to name the
// server's root; if no prefix matches, the server-relative path is
// returned alone.
func (s *Session) CurrentName() (string, error) {
	req := &proto.Message{Op: proto.OpGetContextName}
	req.F[0] = uint32(s.current.Ctx)
	reply, err := s.sendTo(s.current.Server, req)
	if err != nil {
		return "", err
	}
	path := string(reply.Segment)

	preq := &proto.Message{Op: proto.OpGetContextName}
	preq.F[0] = uint32(core.CtxDefault)
	preq.F[1] = uint32(s.current.Server)
	preply, err := s.sendTo(s.prefixServer, preq)
	if err != nil {
		// No prefix names this server: return the server-relative path,
		// the best available answer (§6).
		return path, nil
	}
	if path == "/" {
		return string(preply.Segment), nil
	}
	return string(preply.Segment) + path, nil
}
