package client_test

import (
	"errors"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/kernel"
	"repro/internal/proto"
	"repro/internal/rig"
)

// bootLeased builds the standard rig with lease granting enabled on
// every workstation prefix server and the first workstation's session
// running the lease cache.
func bootLeased(t *testing.T, lease time.Duration) *rig.Rig {
	t.Helper()
	cfg := rig.DefaultConfig()
	cfg.Lease = lease
	r, err := rig.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.WS[0].Session.EnableLeaseCache(); err != nil {
		t.Fatal(err)
	}
	return r
}

// TestLeaseExpiryBoundary pins the expiry boundary exactly: a lease is
// valid through T+L−ε and lapses at T+L — the first use at or past the
// expiry revalidates through the prefix server instead of serving the
// cached pair (PROTOCOL.md §13).
func TestLeaseExpiryBoundary(t *testing.T) {
	const name = "[home]welcome.txt"
	for _, tc := range []struct {
		label string
		lease time.Duration
	}{
		{"short", 60 * time.Millisecond},
		{"medium", 150 * time.Millisecond},
		{"long", 600 * time.Millisecond},
	} {
		t.Run(tc.label, func(t *testing.T) {
			r := bootLeased(t, tc.lease)
			s := r.WS[0].Session
			warmStart := s.Proc().Now()
			if _, err := s.ReadFile(name); err != nil {
				t.Fatal(err)
			}
			st := s.LeaseCacheStats()
			if st.Misses != 1 || st.Renewals != 0 {
				t.Fatalf("after warm read: %+v", st)
			}
			exp, ok := s.LeaseExpiry(name)
			now := s.Proc().Now()
			if !ok || exp <= now {
				t.Fatalf("lease expiry = %v, %v (now %v)", exp, ok, now)
			}
			// The stamp window is the configured length: granted during the
			// warm read, expiring at most one lease length past it.
			if exp < warmStart+tc.lease || exp > now+tc.lease {
				t.Fatalf("expiry %v outside [%v, %v]", exp, warmStart+tc.lease, now+tc.lease)
			}

			// Probe the boundary without touching the clock: valid at
			// T+L−ε, invalid at T+L exactly.
			if _, ok := s.LeasedRoute(name, exp-time.Nanosecond); !ok {
				t.Fatal("lease invalid one instant before its expiry")
			}
			if _, ok := s.LeasedRoute(name, exp); ok {
				t.Fatal("lease still valid at its expiry")
			}

			// Operationally: a use just before expiry hits, a use at expiry
			// revalidates (a renewal, not a blind miss) and extends the
			// stamp.
			s.Proc().ChargeCompute(exp - time.Nanosecond - s.Proc().Now())
			hits := s.LeaseCacheStats().Hits
			if _, err := s.Query(name); err != nil {
				t.Fatal(err)
			}
			st = s.LeaseCacheStats()
			if st.Hits != hits+1 || st.Renewals != 0 {
				t.Fatalf("query at T+L−ε must hit: %+v", st)
			}
			// The query's own latency pushed the clock past the expiry.
			if s.Proc().Now() < exp {
				t.Fatalf("clock %v still before expiry %v", s.Proc().Now(), exp)
			}
			if _, err := s.Query(name); err != nil {
				t.Fatal(err)
			}
			st = s.LeaseCacheStats()
			if st.Renewals != 1 {
				t.Fatalf("query at/after T+L must renew: %+v", st)
			}
			exp2, ok := s.LeaseExpiry(name)
			if !ok || exp2 <= exp {
				t.Fatalf("renewal expiry %v (ok=%v) does not extend %v", exp2, ok, exp)
			}
		})
	}
}

// TestNegativeCache verifies negative caching of absent names: the first
// lookup walks the prefix server and caches the NotFound under a lease,
// repeated lookups are answered locally for exactly the client stub
// cost, and defining the name invalidates the negative holders by
// callback before the define returns.
func TestNegativeCache(t *testing.T) {
	r := bootLeased(t, 200*time.Millisecond)
	s := r.WS[0].Session

	if _, err := s.Query("[nosuch]x"); !errors.Is(err, proto.ErrNotFound) {
		t.Fatalf("query of absent prefix: %v", err)
	}
	st := s.LeaseCacheStats()
	if st.Misses != 1 || st.NegativeHits != 0 {
		t.Fatalf("after first lookup: %+v", st)
	}
	if _, ok := s.LeaseExpiry("[nosuch]"); !ok {
		t.Fatal("no negative lease cached")
	}

	// The repeat is answered locally: ErrNotFound again, at exactly the
	// client stub cost — no message leaves the host.
	before := s.Proc().Now()
	if _, err := s.Query("[nosuch]x"); !errors.Is(err, proto.ErrNotFound) {
		t.Fatalf("repeat query: %v", err)
	}
	if cost := s.Proc().Now() - before; cost != r.Model.ClientStubCost {
		t.Fatalf("negative hit cost %v, want the bare stub cost %v", cost, r.Model.ClientStubCost)
	}
	if st = s.LeaseCacheStats(); st.NegativeHits != 1 {
		t.Fatalf("after repeat: %+v", st)
	}

	// Defining the name invalidates the negative holders before the
	// define's reply — the very next lookup resolves fresh.
	pair, err := s.MapContext("[home]")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddName("nosuch", pair); err != nil {
		t.Fatal(err)
	}
	st = s.LeaseCacheStats()
	if st.Invalidations != 1 {
		t.Fatalf("define did not call back the negative holder: %+v", st)
	}
	if _, ok := s.LeaseExpiry("[nosuch]"); ok {
		t.Fatal("negative entry survived the invalidation")
	}
	misses := s.LeaseCacheStats().Misses
	if _, err := s.Query("[nosuch]welcome.txt"); err != nil {
		t.Fatalf("query after define: %v", err)
	}
	st = s.LeaseCacheStats()
	if st.Misses != misses+1 {
		t.Fatalf("lookup after define must re-resolve: %+v", st)
	}
	if srv := r.WS[0].Prefix.LeaseStats(); srv.Negatives != 1 || srv.Invalidations == 0 {
		t.Fatalf("server lease stats: %+v", srv)
	}
}

// TestLeaseSurvivesFlush pins the FlushEvery compat contract: the blind
// flush empties the plain name cache but deliberately leaves leased
// entries alone — coherence, not flushing, bounds their staleness.
func TestLeaseSurvivesFlush(t *testing.T) {
	r := bootLeased(t, 200*time.Millisecond)
	s := r.WS[0].Session
	s.EnableNameCache(true)
	if _, err := s.ReadFile("[home]welcome.txt"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.LeaseExpiry("[home]"); !ok {
		t.Fatal("no lease after read")
	}
	s.FlushNameCache()
	if _, ok := s.LeaseExpiry("[home]"); !ok {
		t.Fatal("blind flush must not touch leased entries")
	}
	hits := s.LeaseCacheStats().Hits
	if _, err := s.Query("[home]welcome.txt"); err != nil {
		t.Fatal(err)
	}
	if st := s.LeaseCacheStats(); st.Hits != hits+1 {
		t.Fatalf("post-flush query must still hit the lease: %+v", st)
	}
}

// TestLeaseCacheLifecycle pins the off-switch: DisableLeaseCache
// destroys the callback process and reverts the session to the
// validate-on-use path, the probes and stats degrade to their zero
// values, and a second disable is a no-op.
func TestLeaseCacheLifecycle(t *testing.T) {
	r := bootLeased(t, 200*time.Millisecond)
	s := r.WS[0].Session
	if s.LeaseCallback() == kernel.NilPID {
		t.Fatal("enabled cache must expose its callback pid")
	}
	if _, err := s.ReadFile("[home]welcome.txt"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.LeasedRoute("[home]welcome.txt", s.Proc().Now()); !ok {
		t.Fatal("no leased route after warm read")
	}
	s.DisableLeaseCache()
	s.DisableLeaseCache() // idempotent
	if got := s.LeaseCallback(); got != kernel.NilPID {
		t.Fatalf("callback after disable = %v, want NilPID", got)
	}
	if st := s.LeaseCacheStats(); st != (client.LeaseStats{}) {
		t.Fatalf("stats after disable = %+v, want zero", st)
	}
	if _, ok := s.LeasedRoute("[home]welcome.txt", s.Proc().Now()); ok {
		t.Fatal("leased route must vanish with the cache")
	}
	if _, ok := s.LeaseExpiry("[home]welcome.txt"); ok {
		t.Fatal("lease expiry must vanish with the cache")
	}
	if _, err := s.ReadFile("[home]welcome.txt"); err != nil {
		t.Fatalf("validate-on-use read after disable: %v", err)
	}
}
