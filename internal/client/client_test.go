package client_test

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/fileserver"
	"repro/internal/proto"
	"repro/internal/rig"
)

func boot(t *testing.T) *rig.Rig {
	t.Helper()
	r, err := rig.New(rig.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRoutePrefixedVsRelative(t *testing.T) {
	// Both forms reach the same file: '['-names via the prefix server,
	// relative names via the current context — the two routing arms of
	// the single common check (§6).
	r := boot(t)
	s := r.WS[0].Session
	a, err := s.ReadFile("[home]welcome.txt")
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.ReadFile("welcome.txt")
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("routes disagree")
	}
}

func TestOpenModes(t *testing.T) {
	r := boot(t)
	s := r.WS[0].Session
	// Read-only instance rejects writes at the server.
	f, err := s.Open("[home]welcome.txt", proto.ModeRead)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, proto.ErrModeNotSupported) {
		t.Fatalf("write to read-only err = %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFileSeekAndPartialReads(t *testing.T) {
	r := boot(t)
	s := r.WS[0].Session
	content := strings.Repeat("0123456789", 200) // 2000 bytes, 4 blocks
	if err := s.WriteFile("[home]seek.dat", []byte(content)); err != nil {
		t.Fatal(err)
	}
	f, err := s.Open("[home]seek.dat", proto.ModeRead)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Seek(515, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 7)
	if _, err := io.ReadFull(f, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != content[515:522] {
		t.Fatalf("read %q, want %q", buf, content[515:522])
	}
	// Seek relative to end.
	if _, err := f.Seek(-4, io.SeekEnd); err != nil {
		t.Fatal(err)
	}
	got, err := f.ReadAll()
	if err != nil || string(got) != content[len(content)-4:] {
		t.Fatalf("tail read %q, %v", got, err)
	}
	if _, err := f.Seek(-10, io.SeekStart); !errors.Is(err, proto.ErrBadArgs) {
		t.Fatalf("negative seek err = %v", err)
	}
}

func TestQueryRefreshAfterWrite(t *testing.T) {
	r := boot(t)
	s := r.WS[0].Session
	f, err := s.Open("[home]grow.dat", proto.ModeRead|proto.ModeWrite|proto.ModeCreate)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Info().SizeBytes != 0 {
		t.Fatal("new file should be empty")
	}
	if _, err := f.Write(make([]byte, 700)); err != nil {
		t.Fatal(err)
	}
	info, err := f.Query()
	if err != nil || info.SizeBytes != 700 {
		t.Fatalf("query = %+v, %v", info, err)
	}
}

func TestInstanceNameThroughPrefix(t *testing.T) {
	// The inverse mapping from an open instance returns the name the
	// server interpreted — the post-prefix remainder, since the prefix
	// server rewrote the request (§6's many-to-one reverse mapping).
	r := boot(t)
	s := r.WS[0].Session
	f, err := s.Open("[home]welcome.txt", proto.ModeRead)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	name, err := f.InstanceName()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(name, "welcome.txt") {
		t.Fatalf("instance name = %q", name)
	}
}

func TestChangeContextToBadNameFails(t *testing.T) {
	r := boot(t)
	s := r.WS[0].Session
	before := s.Current()
	if err := s.ChangeContext("[home]welcome.txt"); !errors.Is(err, proto.ErrNotAContext) {
		t.Fatalf("chdir to a file err = %v", err)
	}
	if s.Current() != before {
		t.Fatal("failed chdir must not change the current context")
	}
	if err := s.ChangeContext("[nosuch]"); !errors.Is(err, proto.ErrNotFound) {
		t.Fatalf("chdir to unknown prefix err = %v", err)
	}
}

func TestUnlinkCrossServerLink(t *testing.T) {
	r := boot(t)
	s := r.WS[0].Session
	// The link resolves before unlinking...
	if _, err := s.ReadFile("[storage]/shared/archive/2026/paper.mss"); err != nil {
		t.Fatal(err)
	}
	if err := s.Unlink("[storage]/shared/archive"); err != nil {
		t.Fatal(err)
	}
	// ...the binding is gone afterwards, but FS2's objects are untouched.
	if _, err := s.ReadFile("[storage]/shared/archive/2026/paper.mss"); !errors.Is(err, proto.ErrNotFound) {
		t.Fatalf("read through removed link err = %v", err)
	}
	if _, err := s.ReadFile("[storage2]/archive/2026/paper.mss"); err != nil {
		t.Fatalf("remote object must survive unlink: %v", err)
	}
}

func TestAddLinkThenTraverse(t *testing.T) {
	r := boot(t)
	s := r.WS[0].Session
	target, err := s.MapContext("[storage2]/archive/2026")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddLink("[home]papers", target); err != nil {
		t.Fatal(err)
	}
	data, err := s.ReadFile("[home]papers/paper.mss")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Uniform Access") {
		t.Fatalf("read %q", data)
	}
}

func TestSessionIsolation(t *testing.T) {
	// Two sessions (programs) on the same workstation have independent
	// current contexts but share the user's prefix server.
	r := boot(t)
	ws := r.WS[0]
	s2, err := r.NewSession(ws)
	if err != nil {
		t.Fatal(err)
	}
	if err := ws.Session.ChangeContext("[storage]/users/cheriton"); err != nil {
		t.Fatal(err)
	}
	// s2's current context is unchanged.
	data, err := s2.ReadFile("welcome.txt")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "mann") {
		t.Fatalf("s2 read %q", data)
	}
	// But a prefix added via s2 is visible to the first session.
	pair, err := s2.MapContext("[storage]/bin")
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.AddName("sharedpfx", pair); err != nil {
		t.Fatal(err)
	}
	if _, err := ws.Session.Query("[sharedpfx]hello"); err != nil {
		t.Fatalf("shared prefix not visible: %v", err)
	}
}

func TestListPrefixesMatchesDefinitions(t *testing.T) {
	r := boot(t)
	s := r.WS[0].Session
	records, err := s.ListPrefixes()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != len(r.WS[0].Prefix.Bindings()) {
		t.Fatalf("listing has %d records, table has %d", len(records), len(r.WS[0].Prefix.Bindings()))
	}
	for _, d := range records {
		if d.Tag != proto.TagContextPrefix {
			t.Fatalf("record %+v", d)
		}
	}
}

func TestWriteFileTruncatesExisting(t *testing.T) {
	r := boot(t)
	s := r.WS[0].Session
	if err := s.WriteFile("[home]t.txt", []byte("a much longer original content")); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteFile("[home]t.txt", []byte("short")); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadFile("[home]t.txt")
	if err != nil || string(got) != "short" {
		t.Fatalf("read %q, %v", got, err)
	}
}

func TestRenameRelativeNames(t *testing.T) {
	r := boot(t)
	s := r.WS[0].Session
	s.SetCurrent(r.WS[0].HomeCtx)
	if err := s.WriteFile("x.txt", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := s.Rename("x.txt", "y.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadFile("y.txt"); err != nil {
		t.Fatal(err)
	}
}

func TestCurrentContextSurvivesPrefixChanges(t *testing.T) {
	// Current context is a (pid, ctx) pair, independent of the prefix
	// table — deleting the prefix used to reach it does not break it.
	r := boot(t)
	s := r.WS[0].Session
	if err := s.ChangeContext("[storage2]/archive"); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteName("storage2"); err != nil {
		t.Fatal(err)
	}
	records, err := s.List("")
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 1 || records[0].Name != "2026" {
		t.Fatalf("listing = %+v", records)
	}
}

func TestCrossPrefixAddLinkExtendsForest(t *testing.T) {
	// Build a chain: FS2 gets a link back into FS1, making a path that
	// crosses servers twice.
	r := boot(t)
	s := r.WS[0].Session
	fs1bin, err := s.MapContext("[storage]/bin")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddLink("[storage2]/archive/tools", fs1bin); err != nil {
		t.Fatal(err)
	}
	d, err := s.Query("[storage]/shared/archive/tools/hello")
	if err != nil {
		t.Fatal(err)
	}
	if d.Tag != proto.TagFile || d.Name != "hello" {
		t.Fatalf("descriptor = %+v", d)
	}

}

func TestNameCacheHitsAndSpeed(t *testing.T) {
	r := boot(t)
	s := r.WS[0].Session
	s.EnableNameCache(false)

	// Warm.
	if _, err := s.ReadFile("[home]welcome.txt"); err != nil {
		t.Fatal(err)
	}
	stats := s.NameCacheStats()
	if stats.Misses != 1 {
		t.Fatalf("stats after warm = %+v", stats)
	}
	// A cached open is cheaper than the prefix-server path.
	start := s.Proc().Now()
	if _, err := s.ReadFile("[home]welcome.txt"); err != nil {
		t.Fatal(err)
	}
	cached := s.Proc().Now() - start
	if s.NameCacheStats().Hits == 0 {
		t.Fatal("second open should hit the cache")
	}
	s.DisableNameCache()
	start = s.Proc().Now()
	if _, err := s.ReadFile("[home]welcome.txt"); err != nil {
		t.Fatal(err)
	}
	uncached := s.Proc().Now() - start
	if cached >= uncached {
		t.Fatalf("cached read %v should beat uncached %v", cached, uncached)
	}
}

func TestNameCacheStaleAndFlush(t *testing.T) {
	r := boot(t)
	s := r.WS[0].Session
	s.EnableNameCache(false)
	if _, err := s.ReadFile("[storage2]/archive/2026/paper.mss"); err != nil {
		t.Fatal(err)
	}
	// FS2 is re-created with a new pid: the cached pair goes stale.
	r.FS2Host.Crash()
	r.FS2Host.Restart()
	fsNew, err := fileserver.Start(r.FS2Host, "fs2")
	if err != nil {
		t.Fatal(err)
	}
	if err := fsNew.WriteFile("/archive/2026/paper.mss", "system", []byte("restored")); err != nil {
		t.Fatal(err)
	}
	// The prefix table must also be repointed (static [storage2]) — the
	// cache failure below is purely the client cache's.
	if err := s.DeleteName("storage2"); err != nil {
		t.Fatal(err)
	}
	if err := s.AddName("storage2", fsNew.RootPair()); err != nil {
		t.Fatal(err)
	}

	if _, err := s.ReadFile("[storage2]/archive/2026/paper.mss"); err == nil {
		t.Fatal("naive cache must fail on the stale resolution")
	}
	if s.NameCacheStats().Stale == 0 {
		t.Fatal("stale use not counted")
	}
	s.FlushNameCache()
	data, err := s.ReadFile("[storage2]/archive/2026/paper.mss")
	if err != nil || string(data) != "restored" {
		t.Fatalf("after flush: %q, %v", data, err)
	}
}

func TestNameCacheRetryRecovers(t *testing.T) {
	r := boot(t)
	s := r.WS[0].Session
	s.EnableNameCache(true)
	if _, err := s.ReadFile("[storage2]/archive/2026/paper.mss"); err != nil {
		t.Fatal(err)
	}
	r.FS2Host.Crash()
	r.FS2Host.Restart()
	fsNew, err := fileserver.Start(r.FS2Host, "fs2")
	if err != nil {
		t.Fatal(err)
	}
	if err := fsNew.WriteFile("/archive/2026/paper.mss", "system", []byte("restored")); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteName("storage2"); err != nil {
		t.Fatal(err)
	}
	if err := s.AddName("storage2", fsNew.RootPair()); err != nil {
		t.Fatal(err)
	}
	data, err := s.ReadFile("[storage2]/archive/2026/paper.mss")
	if err != nil || string(data) != "restored" {
		t.Fatalf("retry cache did not recover: %q, %v", data, err)
	}
	if s.NameCacheStats().Stale != 1 {
		t.Fatalf("stats = %+v", s.NameCacheStats())
	}
}

func TestFileOpsAgainstReferenceModel(t *testing.T) {
	// Model-based property: random Write/Seek/Read sequences through the
	// block-oriented I/O protocol behave exactly like an in-memory byte
	// buffer with a cursor.
	r := boot(t)
	s := r.WS[0].Session

	for _, seed := range []int64{3, 11, 29} {
		rng := rand.New(rand.NewSource(seed))
		name := fmt.Sprintf("[home]model-%d.dat", seed)
		f, err := s.Open(name, proto.ModeRead|proto.ModeWrite|proto.ModeCreate)
		if err != nil {
			t.Fatal(err)
		}

		var ref []byte // reference contents
		var pos int64  // reference cursor
		for op := 0; op < 60; op++ {
			switch rng.Intn(3) {
			case 0: // write a random chunk at the cursor
				chunk := make([]byte, 1+rng.Intn(700))
				for i := range chunk {
					chunk[i] = byte(rng.Intn(256))
				}
				n, err := f.Write(chunk)
				if err != nil || n != len(chunk) {
					t.Fatalf("seed %d op %d: write %d, %v", seed, op, n, err)
				}
				if need := pos + int64(len(chunk)); need > int64(len(ref)) {
					grown := make([]byte, need)
					copy(grown, ref)
					ref = grown
				}
				copy(ref[pos:], chunk)
				pos += int64(len(chunk))

			case 1: // seek somewhere within [0, len+32]
				target := int64(0)
				if len(ref) > 0 {
					target = int64(rng.Intn(len(ref) + 32))
				}
				if _, err := f.Seek(target, io.SeekStart); err != nil {
					t.Fatalf("seed %d op %d: seek: %v", seed, op, err)
				}
				pos = target

			case 2: // read a chunk at the cursor
				want := 1 + rng.Intn(900)
				buf := make([]byte, want)
				n, err := f.Read(buf)
				expected := 0
				if pos < int64(len(ref)) {
					expected = len(ref) - int(pos)
					if expected > want {
						expected = want
					}
				}
				if expected == 0 {
					if err != io.EOF {
						t.Fatalf("seed %d op %d: read at EOF: n=%d err=%v", seed, op, n, err)
					}
					continue
				}
				if err != nil && err != io.EOF {
					t.Fatalf("seed %d op %d: read: %v", seed, op, err)
				}
				// The block protocol may return short reads at block
				// boundaries; verify the prefix matches and advance.
				if n == 0 {
					t.Fatalf("seed %d op %d: zero read with %d expected", seed, op, expected)
				}
				if string(buf[:n]) != string(ref[pos:pos+int64(n)]) {
					t.Fatalf("seed %d op %d: contents diverge at %d", seed, op, pos)
				}
				pos += int64(n)
			}
		}
		// Final: full contents agree.
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			t.Fatal(err)
		}
		got, err := f.ReadAll()
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(ref) {
			t.Fatalf("seed %d: final contents diverge (%d vs %d bytes)", seed, len(got), len(ref))
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
