package client

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/nametree"
	"repro/internal/prefix"
	"repro/internal/proto"
)

// FuzzCacheKey fuzzes the name-cache key derivation: the routine that
// decides which per-prefix cache entry a CSname hits (and which entry a
// rebind invalidates). The key must exist exactly for prefixed names,
// be the parsed prefix verbatim, and agree with the prefix syntax's own
// parser — a key mismatch would make the cache serve another prefix's
// binding.
// FuzzNegativeCacheKey fuzzes the negative-cache coherence key: a failed
// lookup of any prefixed name stores its NotFound under the parsed
// prefix, and a later define of that prefix invalidates holders under
// the server's add-key (the bracket-trimmed CSname). For every definable
// prefix the two keys must coincide — a mismatch would strand a negative
// entry past the define, serving NotFound for a name that now exists
// until the lease lapses.
func FuzzNegativeCacheKey(f *testing.F) {
	f.Add("[nosuch]x")
	f.Add("[home]welcome.txt")
	f.Add("[a[]x")
	f.Add("[ [] ]gap")
	f.Add("[\x00]nul")
	f.Add("[b]")
	f.Fuzz(func(t *testing.T, name string) {
		pfx, _, err := cacheKey(name)
		if err != nil {
			return // unprefixed or malformed: never reaches the lease cache
		}
		// The server's define path computes its invalidation key by
		// trimming the bracket syntax from the CSname (prefix.handleAdd),
		// and rejects keys containing "[]/" — those prefixes can never be
		// defined, so their negative entries are bounded by expiry alone.
		addKey := strings.Trim(prefix.Quote(pfx), "[]")
		if strings.ContainsAny(pfx, "[]/") {
			return
		}
		if addKey != pfx {
			t.Fatalf("define key %q diverges from cache key %q", addKey, pfx)
		}
		// And the callback path drops exactly that entry.
		lc := &leaseCache{entries: nametree.New[leaseEntry]()}
		lc.entries.Insert(pfx, leaseEntry{negative: true})
		lc.drop(addKey)
		if lc.entries.Len() != 0 {
			t.Fatalf("invalidation of %q stranded negative entry %q", addKey, pfx)
		}
	})
}

func FuzzCacheKey(f *testing.F) {
	f.Add("[home]welcome.txt")
	f.Add("[storage]/shared/archive/2026/paper.mss")
	f.Add("[bin]hello")
	f.Add("welcome.txt")
	f.Add("[unterminated")
	f.Add("[]empty")
	f.Add("[a][b]nested")
	f.Add("")
	f.Fuzz(func(t *testing.T, name string) {
		pfx, rest, err := cacheKey(name)
		if err != nil {
			if !errors.Is(err, proto.ErrBadArgs) {
				t.Fatalf("cacheKey error %v is not ErrBadArgs", err)
			}
			return
		}
		if !prefix.HasPrefix(name) {
			t.Fatalf("key %q derived for unprefixed name %q", pfx, name)
		}
		if pfx == "" || strings.ContainsRune(pfx, ']') {
			t.Fatalf("malformed key %q", pfx)
		}
		if rest <= 0 || rest > len(name) {
			t.Fatalf("rest %d out of range for %q", rest, name)
		}
		// The key is the prefix verbatim: the name re-assembled from its
		// quoted key must produce the same key and the same remainder.
		requoted := prefix.Quote(pfx) + name[rest:]
		p2, r2, err := cacheKey(requoted)
		if err != nil || p2 != pfx {
			t.Fatalf("re-quoted name parses to (%q, %v), want key %q", p2, err, pfx)
		}
		if requoted[r2:] != name[rest:] {
			t.Fatalf("remainder changed: %q vs %q", requoted[r2:], name[rest:])
		}
		// And the parser the prefix server itself uses must agree.
		p3, r3, err := prefix.Parse(name, 0)
		if err != nil || p3 != pfx || r3 != rest {
			t.Fatalf("cacheKey (%q, %d) disagrees with prefix.Parse (%q, %d, %v)", pfx, rest, p3, r3, err)
		}
	})
}
