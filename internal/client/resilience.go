// Resilience: the client run-time's unified recovery policy.
//
// The paper's §2.2 argues the distributed model keeps every object on a
// live server nameable — but only if clients actually re-resolve names
// when a binding dies under them. This file adds that recovery to the
// standard run-time routines as one policy shared by every operation:
//
//   - bounded exponential-backoff retries, charged to virtual time, on
//     transport-level failures (dead process, host down, partition,
//     retransmission exhaustion) and on the prefix server's bounded
//     "no live target" answer;
//   - automatic re-resolution between attempts: prefixed names re-route
//     through the context prefix server (whose dynamic bindings rebind
//     via GetPid at time of use, §4.2), and a dangling current context
//     is re-mapped from the name it was entered by;
//   - per-session resilience metrics, surfaced through internal/rig and
//     the A10 chaos experiment.
package client

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/prefix"
	"repro/internal/proto"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// RetryPolicy bounds the recovery a session performs on a failed
// operation. All delays are virtual time, charged to the session's
// process clock.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per operation (1 = no
	// retry).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth (doubling per retry).
	MaxDelay time.Duration
}

// DefaultRetryPolicy is the measured policy the chaos experiments use:
// four attempts, 50 ms initial backoff doubling to a 400 ms cap —
// roughly the kernel's retransmission scale, so a retried operation
// rides out one retransmit-detected failure per backoff step.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseDelay: 50 * time.Millisecond, MaxDelay: 400 * time.Millisecond}
}

// ResilienceStats is a session's recovery record.
type ResilienceStats struct {
	// Ops counts operations attempted under the policy.
	Ops int
	// OpsFailed counts operations that failed after exhausting retries
	// (or failing terminally).
	OpsFailed int
	// Retries counts individual retry attempts.
	Retries int
	// Rebinds counts re-resolutions performed between attempts (cached
	// prefix resolutions dropped, current context re-mapped).
	Rebinds int
	// Failovers counts operations that succeeded after at least one
	// failed attempt.
	Failovers int
	// Downtime is the total virtual time spent backing off — the
	// unavailability the session actually experienced.
	Downtime vtime.Time
}

// resilience is the per-session recovery state.
type resilience struct {
	policy   RetryPolicy
	observer func(vtime.Time)
	stats    ResilienceStats
}

// EnableResilience turns on the recovery policy for every operation on
// this session.
func (s *Session) EnableResilience(policy RetryPolicy) {
	if policy.MaxAttempts < 1 {
		policy.MaxAttempts = 1
	}
	s.recovery = &resilience{policy: policy}
}

// DisableResilience turns recovery off; failures surface immediately.
func (s *Session) DisableResilience() { s.recovery = nil }

// ResilienceStats returns the session's recovery counters.
func (s *Session) ResilienceStats() ResilienceStats {
	if s.recovery == nil {
		return ResilienceStats{}
	}
	return s.recovery.stats
}

// SetRetryObserver installs a callback invoked with the session's
// virtual time after each backoff charge. The chaos engine registers
// its AdvanceTo here, so faults scheduled in virtual time fire while a
// session is waiting out an outage — exactly when a real deployment
// would see them.
func (s *Session) SetRetryObserver(fn func(vtime.Time)) {
	if s.recovery != nil {
		s.recovery.observer = fn
	}
}

// Retryable reports whether err is a transport-level failure that
// re-resolution or waiting may cure: the target process is gone
// (crashed, destroyed, or re-created under a new pid), its host is
// down, the network is partitioned or lossy to the point of retransmit
// exhaustion, or a server reported a bounded-time timeout for a dead
// forward target. Name-level failures (not found, bad arguments, no
// permission...) are terminal: retrying cannot change what a name
// means.
func Retryable(err error) bool {
	return errors.Is(err, kernel.ErrNonexistentProcess) ||
		errors.Is(err, kernel.ErrHostDown) ||
		errors.Is(err, netsim.ErrUnreachable) ||
		errors.Is(err, proto.ErrNonexistentProcess) ||
		errors.Is(err, proto.ErrTimeout) ||
		// A replication-group redirect: the contacted member is not (or no
		// longer) the leader. Waiting covers the leaderless election
		// window, and the redirect's hint re-routes the next attempt
		// (PROTOCOL.md §11).
		errors.Is(err, proto.ErrNotLeader)
}

// withRecovery runs attempt under the session's policy. Each attempt is
// expected to redo its own routing (so a retry picks up fresh
// resolutions). name is the operation's CSname, used to invalidate
// per-name state between attempts; it may be empty for operations not
// tied to a name.
func (s *Session) withRecovery(name string, attempt func() error) error {
	tr := s.proc.Tracer()
	label := name
	if label == "" {
		label = "(direct)"
	}
	root := tr.Start(0, trace.KindClientOp, label, s.proc.Now(), s.proc.TraceID())
	r := s.recovery
	if r == nil {
		s.proc.SetCurrentSpan(root)
		err := attempt()
		s.proc.SetCurrentSpan(0)
		tr.Fail(root, s.proc.Now(), failureClass(err))
		return err
	}
	r.stats.Ops++
	s.metric("client_ops_total").Inc()
	a := tr.Start(root, trace.KindAttempt, "attempt 1", s.proc.Now(), s.proc.TraceID())
	s.proc.SetCurrentSpan(a)
	err := attempt()
	s.proc.SetCurrentSpan(0)
	tr.Fail(a, s.proc.Now(), failureClass(err))
	if err == nil || !Retryable(err) {
		if err != nil {
			r.stats.OpsFailed++
			s.metric("client_op_failures_total").Inc()
		}
		tr.Fail(root, s.proc.Now(), failureClass(err))
		return err
	}
	delay := r.policy.BaseDelay
	for try := 1; try < r.policy.MaxAttempts; try++ {
		// Back off in virtual time. The observer (typically the chaos
		// engine) sees the new clock before the retry routes.
		r.stats.Retries++
		s.metric("client_retries_total").Inc()
		r.stats.Downtime += delay
		b := tr.Start(root, trace.KindBackoff, fmt.Sprintf("backoff %d", try), s.proc.Now(), s.proc.TraceID())
		s.proc.ChargeCompute(delay)
		tr.End(b, s.proc.Now())
		if r.observer != nil {
			r.observer(s.proc.Now())
		}
		if delay *= 2; delay > r.policy.MaxDelay {
			delay = r.policy.MaxDelay
		}
		rb := tr.Start(root, trace.KindRebind, label, s.proc.Now(), s.proc.TraceID())
		s.proc.SetCurrentSpan(rb)
		s.rebind(name)
		s.proc.SetCurrentSpan(0)
		tr.End(rb, s.proc.Now())
		a := tr.Start(root, trace.KindAttempt, fmt.Sprintf("attempt %d", try+1), s.proc.Now(), s.proc.TraceID())
		s.proc.SetCurrentSpan(a)
		err = attempt()
		s.proc.SetCurrentSpan(0)
		tr.Fail(a, s.proc.Now(), failureClass(err))
		if err == nil {
			r.stats.Failovers++
			s.metric("client_failovers_total").Inc()
			tr.End(root, s.proc.Now())
			return nil
		}
		if !Retryable(err) {
			break
		}
	}
	r.stats.OpsFailed++
	s.metric("client_op_failures_total").Inc()
	tr.Fail(root, s.proc.Now(), failureClass(err))
	return err
}

// failureClass classifies an operation-level error for trace spans:
// transport failures get the kernel classification, anything else the
// protocol reply code the error maps to.
func failureClass(err error) string {
	if err == nil {
		return ""
	}
	if c := kernel.FailureClass(err); c != "error" {
		return c
	}
	return proto.ErrorReply(err).String()
}

// rebind drops whatever resolution state the failed attempt may have
// used, so the next attempt resolves afresh: a cached prefix
// resolution is invalidated, and a current context that has no prefix
// to fall back on is re-mapped from the name it was entered by.
func (s *Session) rebind(name string) {
	// A ReplyNotLeader redirect named the successor: re-point whatever
	// routing state sent the failed attempt to the deposed member. Context
	// ids stay valid across a failover — the group replicates the name
	// space, and i-node allocation is deterministic (PROTOCOL.md §11.5) —
	// so only the server half of the pair moves.
	if hint := s.leaderHint; hint != kernel.NilPID {
		s.leaderHint = kernel.NilPID
		if s.proc.Kernel().ProcessAlive(hint) {
			applied := false
			if name != "" && prefix.HasPrefix(name) && s.nameCache != nil {
				if pfx, _, err := cacheKey(name); err == nil {
					if pair, ok := s.nameCache[pfx]; ok && pair.Server != hint {
						pair.Server = hint
						s.nameCache[pfx] = pair
						applied = true
					}
				}
			} else if name != "" && !prefix.HasPrefix(name) && s.current.Server != hint {
				s.current.Server = hint
				applied = true
			}
			if applied {
				s.recovery.stats.Rebinds++
				s.metric("client_rebinds_total").Inc()
				return
			}
		}
	}
	if name != "" && prefix.HasPrefix(name) {
		if s.nameCache != nil {
			if pfx, _, err := cacheKey(name); err == nil {
				if _, ok := s.nameCache[pfx]; ok {
					delete(s.nameCache, pfx)
					s.recovery.stats.Rebinds++
					s.metric("client_rebinds_total").Inc()
				}
			}
		}
		// A leased resolution the failed attempt may have used is dropped
		// the same way: the next attempt revalidates and re-leases.
		if s.leases != nil {
			if pfx, _, err := cacheKey(name); err == nil {
				s.leases.drop(pfx)
			}
		}
		// Prefixed names re-route through the prefix server on the next
		// attempt; its dynamic bindings re-resolve by GetPid per use.
		return
	}
	// A plain name is interpreted in the current context. If that
	// context's server died, re-map the context through the prefix
	// server (GetPid rebinding happens there) using the name it was
	// entered by.
	if s.currentName == "" || !s.proc.Kernel().ProcessAlive(s.current.Server) {
		if s.currentName == "" {
			return
		}
		if pair, err := s.mapContextDirect(s.currentName); err == nil {
			s.current = pair
			s.recovery.stats.Rebinds++
			s.metric("client_rebinds_total").Inc()
		}
	}
}

// mapContextDirect resolves a name to a context pair without recovery
// (used inside the recovery path itself).
func (s *Session) mapContextDirect(name string) (core.ContextPair, error) {
	req := &proto.Message{Op: proto.OpMapContext}
	server, ctx := s.route(name)
	proto.SetCSName(req, uint32(ctx), name)
	s.proc.ChargeCompute(s.proc.Kernel().Model().ClientStubCost)
	reply, err := s.proc.Send(req, server)
	if err != nil {
		return core.ContextPair{}, err
	}
	if err := s.replyErr(reply); err != nil {
		return core.ContextPair{}, err
	}
	pid, c := proto.GetMapContextReply(reply)
	return core.ContextPair{Server: kernel.PID(pid), Ctx: core.ContextID(c)}, nil
}

// PrefixHealth is one entry of a prefix survey: the prefix's
// description record, the context pair its binding currently resolves
// to, and the error probing that server returned — nil for a live
// server. Dead entries carry their error instead of failing the whole
// survey (graceful degradation for fan-out operations).
type PrefixHealth struct {
	Descriptor proto.Descriptor
	Target     core.ContextPair
	Err        error
}

// SurveyPrefixes reads the user's prefix table and probes every
// binding's target server, returning one entry per prefix. Descriptors
// for live servers come back alongside per-entry errors for dead ones,
// so one crashed server cannot hide every other prefix — the §2.2
// reliability property made operational. It fails wholesale only if
// the prefix server itself is unreachable.
func (s *Session) SurveyPrefixes() ([]PrefixHealth, error) {
	records, err := s.ListPrefixes()
	if err != nil {
		return nil, err
	}
	out := make([]PrefixHealth, 0, len(records))
	for _, d := range records {
		entry := PrefixHealth{Descriptor: d}
		if d.ObjectID == 1 {
			// Dynamic binding: resolve by GetPid as the prefix server
			// would at time of use.
			pid, err := s.proc.GetPid(kernel.Service(d.TypeSpecific[0]), kernel.ScopeBoth)
			if err != nil {
				entry.Err = err
				out = append(out, entry)
				continue
			}
			entry.Target = core.ContextPair{Server: pid, Ctx: core.ContextID(d.TypeSpecific[1])}
		} else {
			entry.Target = core.ContextPair{
				Server: kernel.PID(d.TypeSpecific[0]),
				Ctx:    core.ContextID(d.TypeSpecific[1]),
			}
		}
		entry.Err = s.probe(entry.Target)
		out = append(out, entry)
	}
	return out, nil
}

// probe performs one cheap transaction against a server to establish
// liveness. Any reply — success or protocol-level failure — proves the
// server is alive; only transport failures mark it dead.
func (s *Session) probe(pair core.ContextPair) error {
	req := &proto.Message{Op: proto.OpMapContext}
	proto.SetCSName(req, uint32(pair.Ctx), "")
	s.proc.ChargeCompute(s.proc.Kernel().Model().ClientStubCost)
	_, err := s.proc.Send(req, pair.Server)
	if err != nil && Retryable(err) {
		return err
	}
	return nil
}
