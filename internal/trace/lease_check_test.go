package trace

import (
	"strings"
	"testing"
	"time"

	"repro/internal/vtime"
)

// leaseSpan records one KindLease span ("<event> <name>") with a stamp,
// the shape the client cache, prefix server, and ncache tier emit.
func leaseSpan(tr *Tracer, name string, start, grant, expire vtime.Time) SpanID {
	id := tr.Event(0, KindLease, name, start, ProcID{}, "")
	if grant != 0 || expire != 0 {
		tr.SetLease(id, grant, expire)
	}
	return id
}

// TestCheckLeaseInvariantClean feeds the checker a protocol-clean lease
// history: a grant spanning exactly the bound, hits strictly inside
// their lease, an invalidation commit, one stale-but-bounded hit riding
// the pre-commit grant, and a fresh post-commit grant. The checker must
// accept it, and StaleWindows must report exactly the one bounded
// window.
func TestCheckLeaseInvariantClean(t *testing.T) {
	const L = 80 * time.Millisecond
	ms := func(n int) vtime.Time { return vtime.Time(n) * vtime.Time(time.Millisecond) }
	tr := New()
	leaseSpan(tr, "grant shard0", ms(10), ms(10), ms(90))
	leaseSpan(tr, "hit shard0", ms(40), ms(10), ms(90))
	leaseSpan(tr, "negative-hit nosuch", ms(45), ms(20), ms(100))
	leaseSpan(tr, "invalidate shard0", ms(50), 0, 0)
	// Stale but bounded: granted before the commit, served 39 ms past it
	// — legal, strictly before its own expiry.
	leaseSpan(tr, "hit shard0", ms(89), ms(10), ms(90))
	leaseSpan(tr, "expired shard0", ms(95), 0, 0)
	leaseSpan(tr, "renew shard0", ms(95), ms(95), ms(175))
	leaseSpan(tr, "hit shard0", ms(100), ms(95), ms(175))

	spans := tr.Snapshot()
	if err := Check(spans, CheckOptions{LeaseBound: L}); err != nil {
		t.Fatalf("clean lease trace rejected: %v", err)
	}
	ws := StaleWindows(spans)
	if len(ws) != 1 {
		t.Fatalf("stale windows = %+v, want exactly the bounded one", ws)
	}
	w := ws[0]
	if w.Name != "shard0" || w.Commit != int64(ms(50)) || w.Hit != int64(ms(89)) || w.Window != int64(39*time.Millisecond) {
		t.Fatalf("widest window = %+v", w)
	}
	// The post-commit hit rides a fresh grant: no window, no violation.
	if err := Check(spans, CheckOptions{}); err != nil {
		t.Fatalf("zero LeaseBound must skip the lease invariant: %v", err)
	}
}

// TestCheckLeaseViolations feeds the checker one violating trace per
// clause of invariant #7 and requires each to be caught — the suite
// that proves the staleness bound is asserted, not assumed.
func TestCheckLeaseViolations(t *testing.T) {
	const L = 80 * time.Millisecond
	ms := func(n int) vtime.Time { return vtime.Time(n) * vtime.Time(time.Millisecond) }
	for _, tc := range []struct {
		label string
		build func(tr *Tracer)
		want  string
	}{
		{
			"stamp beyond bound",
			func(tr *Tracer) {
				leaseSpan(tr, "grant shard0", ms(10), ms(10), ms(200))
			},
			"beyond",
		},
		{
			"hit at expiry",
			func(tr *Tracer) {
				leaseSpan(tr, "hit shard0", ms(90), ms(10), ms(90))
			},
			"at or after its expiry",
		},
		{
			"negative hit past expiry",
			func(tr *Tracer) {
				leaseSpan(tr, "negative-hit nosuch", ms(95), ms(10), ms(90))
			},
			"at or after its expiry",
		},
		{
			"stale read past the bound",
			func(tr *Tracer) {
				// An unstamped hit dodges the stamp and expiry clauses (a
				// legally-stamped hit provably cannot outrun the bound:
				// start < grant+L ≤ Ti+L). The cross-commit clause is the
				// defense in depth that catches it anyway.
				leaseSpan(tr, "invalidate shard0", ms(20), 0, 0)
				leaseSpan(tr, "hit shard0", ms(101), 0, 0)
			},
			"stale read",
		},
	} {
		t.Run(tc.label, func(t *testing.T) {
			tr := New()
			tc.build(tr)
			err := Check(tr.Snapshot(), CheckOptions{LeaseBound: L})
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("violation not caught: err = %v, want %q", err, tc.want)
			}
			// Without the bound the same trace passes: the invariant is
			// opt-in, so pre-lease traces stay checkable.
			if err := Check(tr.Snapshot(), CheckOptions{}); err != nil {
				t.Fatalf("zero LeaseBound must skip the lease invariant: %v", err)
			}
		})
	}
}

// TestStaleWindowsWidestPerName pins StaleWindows' aggregation: several
// stale hits per name collapse to the widest, names sort, and hits
// whose grant postdates the commit are not windows at all.
func TestStaleWindowsWidestPerName(t *testing.T) {
	ms := func(n int) vtime.Time { return vtime.Time(n) * vtime.Time(time.Millisecond) }
	tr := New()
	leaseSpan(tr, "invalidate b", ms(10), 0, 0)
	leaseSpan(tr, "hit b", ms(20), ms(5), ms(85))
	leaseSpan(tr, "hit b", ms(30), ms(5), ms(85))
	leaseSpan(tr, "invalidate a", ms(40), 0, 0)
	leaseSpan(tr, "hit a", ms(41), ms(39), ms(119))
	leaseSpan(tr, "hit a", ms(50), ms(45), ms(125)) // fresh grant: no window
	ws := StaleWindows(tr.Snapshot())
	if len(ws) != 2 || ws[0].Name != "a" || ws[1].Name != "b" {
		t.Fatalf("windows = %+v", ws)
	}
	if ws[0].Window != int64(1*time.Millisecond) || ws[1].Window != int64(20*time.Millisecond) {
		t.Fatalf("windows = %+v", ws)
	}
}
