package trace

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/vtime"
)

var who = ProcID{Name: "p", PID: 7, Host: "h"}

// okTransaction records a minimal clean transaction: send → request
// wire → serve → reply → reply wire.
func okTransaction(t *Tracer, at vtime.Time) SpanID {
	send := t.Start(0, KindSend, "Read -> pid(1.2)", at, who)
	t.Wire(send, "request", at, time.Millisecond, 32, netsim.HopDetail{Packets: 1}, false, false)
	serve := t.Start(send, KindServe, "Read", at+vtime.Time(time.Millisecond), ProcID{Name: "srv", PID: 9, Host: "fs"})
	rep := t.Start(serve, KindReply, "Read -> pid(1.1)", at+vtime.Time(time.Millisecond), ProcID{Name: "srv", PID: 9, Host: "fs"})
	t.Wire(rep, "reply", at+vtime.Time(time.Millisecond), time.Millisecond, 32, netsim.HopDetail{Packets: 1}, false, false)
	t.End(rep, at+vtime.Time(2*time.Millisecond))
	t.End(serve, at+vtime.Time(2*time.Millisecond))
	t.End(send, at+vtime.Time(2*time.Millisecond))
	return send
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	if id := tr.Start(0, KindSend, "x", 0, who); id != 0 {
		t.Fatalf("nil tracer allocated span %d", id)
	}
	tr.End(1, 0)
	tr.Fail(1, 0, "error")
	tr.SetGroup(1)
	tr.SetTransfer(1, 10)
	tr.RecordFrame(netsim.FrameEvent{})
	if tr.Len() != 0 || tr.Snapshot() != nil || tr.Frames() != nil {
		t.Fatal("nil tracer recorded something")
	}
}

func TestSpanIDsDenseAndOrdered(t *testing.T) {
	tr := New()
	for i := 1; i <= 5; i++ {
		if id := tr.Start(0, KindSend, "s", 0, who); int(id) != i {
			t.Fatalf("span %d allocated id %d", i, id)
		}
	}
}

func TestFailFirstWins(t *testing.T) {
	tr := New()
	id := tr.Start(0, KindSend, "s", 0, who)
	tr.Fail(id, 10, "host-down")
	tr.End(id, 20) // must not overwrite the classification
	sp := tr.Snapshot()[0]
	if sp.Err != "host-down" || sp.End != 10 {
		t.Fatalf("second close overwrote the first: %+v", sp)
	}
}

func TestSnapshotMarksLeaks(t *testing.T) {
	tr := New()
	tr.Start(0, KindSend, "s", 0, who)
	if sp := tr.Snapshot()[0]; !sp.Incomplete {
		t.Fatal("unended span not marked Incomplete")
	}
	if err := Check(tr.Snapshot(), CheckOptions{}); err == nil {
		t.Fatal("Check accepted a leaked span")
	}
}

func TestCheckCleanTransaction(t *testing.T) {
	tr := New()
	okTransaction(tr, 0)
	if err := Check(tr.Snapshot(), CheckOptions{Model: vtime.DefaultModel()}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckRejectsUnknownParent(t *testing.T) {
	spans := []Span{{ID: 1, Parent: 99, Kind: KindServe, ended: true}}
	if err := Check(spans, CheckOptions{}); err == nil || !strings.Contains(err.Error(), "unknown parent") {
		t.Fatalf("err = %v", err)
	}
}

func TestCheckRejectsMissingReply(t *testing.T) {
	tr := New()
	send := tr.Start(0, KindSend, "s", 0, who)
	tr.End(send, 10) // successful send with no reply span
	if err := Check(tr.Snapshot(), CheckOptions{}); err == nil || !strings.Contains(err.Error(), "0 successful replies") {
		t.Fatalf("err = %v", err)
	}
}

func TestCheckRejectsDuplicateReply(t *testing.T) {
	tr := New()
	send := tr.Start(0, KindSend, "s", 0, who)
	for i := 0; i < 2; i++ {
		rep := tr.Start(send, KindReply, "r", 0, who)
		tr.End(rep, 5)
	}
	tr.End(send, 10)
	if err := Check(tr.Snapshot(), CheckOptions{}); err == nil || !strings.Contains(err.Error(), "2 successful replies") {
		t.Fatalf("err = %v", err)
	}
}

func TestCheckGroupSendAllowsManyReplies(t *testing.T) {
	tr := New()
	send := tr.Start(0, KindSend, "s -> group", 0, who)
	tr.SetGroup(send)
	for i := 0; i < 3; i++ {
		rep := tr.Start(send, KindReply, "r", 0, who)
		tr.End(rep, 5)
	}
	tr.End(send, 10)
	if err := Check(tr.Snapshot(), CheckOptions{}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckGroupFlagOnForwardRelaxesToo(t *testing.T) {
	// A plain send forwarded to a group: first-reply-wins still lets the
	// other members reply, so >1 reply is legal once any hop is a group.
	tr := New()
	send := tr.Start(0, KindSend, "s", 0, who)
	fwd := tr.Start(send, KindForward, "f -> group", 0, who)
	tr.SetGroup(fwd)
	tr.End(fwd, 2)
	for i := 0; i < 2; i++ {
		rep := tr.Start(fwd, KindReply, "r", 0, who)
		tr.End(rep, 5)
	}
	tr.End(send, 10)
	if err := Check(tr.Snapshot(), CheckOptions{}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckFailedSendNeedsNoReply(t *testing.T) {
	tr := New()
	send := tr.Start(0, KindSend, "s", 0, who)
	tr.Fail(send, 10, "host-down")
	if err := Check(tr.Snapshot(), CheckOptions{}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckNestedSendIsSeparateTransaction(t *testing.T) {
	// A server that sends its own request mid-serve (e.g. GetPid or a
	// nested lookup): the inner transaction's reply must not satisfy the
	// outer send's termination.
	tr := New()
	outer := tr.Start(0, KindSend, "outer", 0, who)
	serve := tr.Start(outer, KindServe, "serve", 1, who)
	inner := tr.Start(serve, KindSend, "inner", 1, who)
	innerRep := tr.Start(inner, KindReply, "r", 2, who)
	tr.End(innerRep, 3)
	tr.End(inner, 3)
	tr.End(serve, 4)
	tr.End(outer, 5) // outer has no reply of its own
	if err := Check(tr.Snapshot(), CheckOptions{}); err == nil || !strings.Contains(err.Error(), "0 successful replies") {
		t.Fatalf("err = %v", err)
	}
}

func TestCheckRejectsForwardLoop(t *testing.T) {
	tr := New()
	send := tr.Start(0, KindSend, "s", 0, who)
	parent := send
	for i := 0; i < 5; i++ {
		f := tr.Start(parent, KindForward, "f", 0, who)
		tr.End(f, 1)
		parent = f
	}
	rep := tr.Start(parent, KindReply, "r", 1, who)
	tr.End(rep, 2)
	tr.End(send, 3)
	if err := Check(tr.Snapshot(), CheckOptions{MaxForwardDepth: 3}); err == nil || !strings.Contains(err.Error(), "forward chain") {
		t.Fatalf("err = %v", err)
	}
	if err := Check(tr.Snapshot(), CheckOptions{MaxForwardDepth: 5}); err != nil {
		t.Fatalf("depth-5 chain rejected at limit 5: %v", err)
	}
}

func TestCheckRejectsBackwardsClock(t *testing.T) {
	tr := New()
	a := tr.Start(0, KindServe, "a", 100, who)
	tr.End(a, 200)
	b := tr.Start(0, KindServe, "b", 50, who) // same process, earlier start
	tr.End(b, 60)
	if err := Check(tr.Snapshot(), CheckOptions{}); err == nil || !strings.Contains(err.Error(), "ran backwards") {
		t.Fatalf("err = %v", err)
	}
}

func TestCheckRejectsEndBeforeStart(t *testing.T) {
	tr := New()
	a := tr.Start(0, KindServe, "a", 100, who)
	tr.End(a, 90)
	if err := Check(tr.Snapshot(), CheckOptions{}); err == nil || !strings.Contains(err.Error(), "before it starts") {
		t.Fatalf("err = %v", err)
	}
}

func TestCheckWirePacketAccounting(t *testing.T) {
	model := vtime.DefaultModel()
	tr := New()
	send := tr.Start(0, KindSend, "s", 0, who)
	// 1300 bytes fragments into ceil(1300/512) = 3 packets; claim 1.
	tr.Wire(send, "request", 0, time.Millisecond, 1300, netsim.HopDetail{Packets: 1}, false, false)
	rep := tr.Start(send, KindReply, "r", 1, who)
	tr.End(rep, 2)
	tr.End(send, 3)
	if err := Check(tr.Snapshot(), CheckOptions{Model: model}); err == nil || !strings.Contains(err.Error(), "cost model says 3") {
		t.Fatalf("err = %v", err)
	}
}

func TestCheckLocalWireCarriesNoPackets(t *testing.T) {
	model := vtime.DefaultModel()
	tr := New()
	send := tr.Start(0, KindSend, "s", 0, who)
	tr.Wire(send, "request", 0, time.Microsecond, 32, netsim.HopDetail{}, true, false)
	rep := tr.Start(send, KindReply, "r", 1, who)
	tr.End(rep, 2)
	tr.End(send, 3)
	if err := Check(tr.Snapshot(), CheckOptions{Model: model}); err != nil {
		t.Fatal(err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := New()
	okTransaction(tr, 0)
	tr.RecordFrame(netsim.FrameEvent{Src: 1, Dst: 2, Cast: "unicast", Bytes: 32, Packets: 1, Latency: time.Millisecond})
	data, err := tr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc Document
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Version != 1 || len(doc.Spans) != tr.Len() || len(doc.Frames) != 1 {
		t.Fatalf("round trip lost data: %+v", doc)
	}
}

func TestEmptyTracerJSONHasEmptyArrays(t *testing.T) {
	data, err := New().JSON()
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if !strings.Contains(s, `"spans": []`) || !strings.Contains(s, `"frames": []`) {
		t.Fatalf("empty trace rendered null arrays:\n%s", s)
	}
}
