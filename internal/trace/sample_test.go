package trace

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/vtime"
)

// oneOp records a minimal root subtree (client-op → send → wire+reply)
// on the sampled tracer and returns the root id. dur sets the root
// length; class, when non-empty, fails the send span.
func oneOp(t *Tracer, proc string, start, dur vtime.Time, class string) SpanID {
	who := ProcID{Name: proc, PID: 1, Host: "ws"}
	srv := ProcID{Name: "srv", PID: 2, Host: "fs"}
	root := t.Start(0, KindClientOp, "op", start, who)
	send := t.Start(root, KindSend, "send", start, who)
	t.Wire(send, "request", start, 100*time.Microsecond, 32, netsim.HopDetail{Packets: 1}, false, false)
	if class == "" {
		rep := t.Start(send, KindReply, "reply", start+dur/4, srv)
		t.End(rep, start+dur/4)
	}
	t.Fail(send, start+dur/2, class)
	t.End(root, start+dur)
	return root
}

func TestSampledHeadSampling(t *testing.T) {
	tr := NewSampled(SampleConfig{HeadEvery: 4})
	if !tr.Sampled() {
		t.Fatalf("Sampled() = false")
	}
	at := vtime.Time(0)
	for i := 0; i < 10; i++ {
		oneOp(tr, "ws-a", at, time.Millisecond, "")
		at += 10 * time.Millisecond
	}
	if got := tr.RootsSeen(); got != 10 {
		t.Fatalf("RootsSeen = %d, want 10", got)
	}
	// Roots 0, 4 and 8 are head-retained.
	if got := tr.RootsRetained(); got != 3 {
		t.Fatalf("RootsRetained = %d, want 3", got)
	}
	spans := tr.Snapshot()
	if len(spans) != 12 { // 3 roots × (client-op + send + wire + reply)
		t.Fatalf("retained %d spans, want 12", len(spans))
	}
	// Every retained subtree is complete: parents resolve.
	ids := make(map[SpanID]bool, len(spans))
	for _, sp := range spans {
		ids[sp.ID] = true
	}
	for _, sp := range spans {
		if sp.Parent != 0 && !ids[sp.Parent] {
			t.Fatalf("span %d retained without parent %d", sp.ID, sp.Parent)
		}
		if sp.Incomplete {
			t.Fatalf("span %d retained incomplete", sp.ID)
		}
	}
}

func TestSampledHeadCountersPerLane(t *testing.T) {
	tr := NewSampled(SampleConfig{HeadEvery: 2})
	// Interleave two lanes; each lane's first and third ops are kept.
	for i := 0; i < 4; i++ {
		oneOp(tr, "ws-a", vtime.Time(i)*time.Millisecond, 100*time.Microsecond, "")
		oneOp(tr, "ws-b", vtime.Time(i)*time.Millisecond, 100*time.Microsecond, "")
	}
	if got := tr.RootsRetained(); got != 4 {
		t.Fatalf("RootsRetained = %d, want 2 per lane", got)
	}
}

func TestSampledTailKeepsFailures(t *testing.T) {
	tr := NewSampled(SampleConfig{HeadEvery: 1000})
	oneOp(tr, "ws-a", 0, time.Millisecond, "")                  // head-kept (first)
	oneOp(tr, "ws-a", time.Second, time.Millisecond, "timeout") // anomaly
	oneOp(tr, "ws-a", 2*time.Second, time.Millisecond, "")      // dropped
	if got := tr.RootsRetained(); got != 2 {
		t.Fatalf("RootsRetained = %d, want 2 (head + failed)", got)
	}
	var sawErr bool
	for _, sp := range tr.Snapshot() {
		if sp.Err == "timeout" {
			sawErr = true
		}
	}
	if !sawErr {
		t.Fatalf("failed span not retained in full")
	}
}

func TestSampledTailKeepsSlow(t *testing.T) {
	tr := NewSampled(SampleConfig{HeadEvery: 1000, SlowOver: 5 * time.Millisecond})
	oneOp(tr, "ws-a", 0, time.Millisecond, "")               // head-kept
	oneOp(tr, "ws-a", time.Second, time.Millisecond, "")     // fast: dropped
	oneOp(tr, "ws-a", 2*time.Second, 8*time.Millisecond, "") // slow: kept
	if got := tr.RootsRetained(); got != 2 {
		t.Fatalf("RootsRetained = %d, want 2 (head + slow)", got)
	}
}

func TestSampledMemoryBounded(t *testing.T) {
	tr := NewSampled(SampleConfig{HeadEvery: 100})
	for i := 0; i < 1000; i++ {
		oneOp(tr, "ws-a", vtime.Time(i)*time.Millisecond, 100*time.Microsecond, "")
	}
	// 10 head-retained roots × 4 spans; nothing else lingers.
	if got := tr.Len(); got != 40 {
		t.Fatalf("Len = %d, want 40 — discarded subtrees still resident", got)
	}
	if len(tr.s.live) != 0 || len(tr.s.roots) != 0 || len(tr.s.rootOf) != 0 {
		t.Fatalf("open-subtree maps not drained: live=%d roots=%d rootOf=%d",
			len(tr.s.live), len(tr.s.roots), len(tr.s.rootOf))
	}
}

func TestSampledDropsFrames(t *testing.T) {
	tr := NewSampled(SampleConfig{HeadEvery: 1})
	tr.RecordFrame(netsim.FrameEvent{Bytes: 64})
	if got := tr.Frames(); len(got) != 0 {
		t.Fatalf("sampled tracer recorded %d frames", len(got))
	}
}

func TestSampledAnnotationsAfterRetireAreNoOps(t *testing.T) {
	tr := NewSampled(SampleConfig{HeadEvery: 1})
	root := oneOp(tr, "ws-a", 0, time.Millisecond, "")
	// The subtree is retired; late annotations must not panic or mutate.
	tr.SetGroup(root)
	tr.SetLease(root, 0, time.Second)
	tr.SetTransfer(root, 999)
	tr.Fail(root, 2*time.Second, "late")
	for _, sp := range tr.Snapshot() {
		if sp.ID == root && (sp.Bytes == 999 || sp.Err == "late") {
			t.Fatalf("retired span mutated: %+v", sp)
		}
	}
}

func TestSampledCheckPasses(t *testing.T) {
	tr := NewSampled(SampleConfig{HeadEvery: 3})
	for i := 0; i < 9; i++ {
		oneOp(tr, "ws-a", vtime.Time(i)*10*time.Millisecond, time.Millisecond, "")
	}
	// Retained subtrees are complete, so the checker's parent and
	// containment invariants hold without special-casing.
	if err := Check(tr.Snapshot(), CheckOptions{}); err != nil {
		t.Fatalf("Check on sampled trace: %v", err)
	}
}

func TestFullModeUnchanged(t *testing.T) {
	tr := New()
	if tr.Sampled() {
		t.Fatalf("full tracer claims sampled mode")
	}
	id := oneOp(tr, "ws-a", 0, time.Millisecond, "")
	if tr.Len() != 4 || id == 0 {
		t.Fatalf("full mode Len = %d", tr.Len())
	}
	tr.RecordFrame(netsim.FrameEvent{Bytes: 64})
	if len(tr.Frames()) != 1 {
		t.Fatalf("full mode dropped a frame")
	}
}
