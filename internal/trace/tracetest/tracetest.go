// Package tracetest is the shared harness of the per-package trace
// invariant tier: every server package drives its protocol against a
// one-kernel traced domain and then runs the invariant checker
// (trace.Check) plus structural assertions over the recorded span tree.
package tracetest

import (
	"testing"

	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// Domain is a traced simulation domain for server trace tests: a kernel
// on a seeded network with a tracer installed as both span recorder and
// netsim frame recorder.
type Domain struct {
	K      *kernel.Kernel
	Tracer *trace.Tracer
	Model  *vtime.CostModel
}

// New builds a traced domain with the default cost model and seed 1.
func New() *Domain {
	model := vtime.DefaultModel()
	net := netsim.New(model, 1)
	k := kernel.New(net)
	tr := trace.New()
	k.SetTracer(tr)
	net.SetRecorder(tr)
	return &Domain{K: k, Tracer: tr, Model: model}
}

// Check runs the full invariant checker over the recorded trace and
// returns the spans for structural assertions.
func (d *Domain) Check(t testing.TB) []trace.Span {
	t.Helper()
	spans := d.Tracer.Snapshot()
	if err := trace.Check(spans, trace.CheckOptions{Model: d.Model}); err != nil {
		t.Fatalf("trace invariants: %v", err)
	}
	return spans
}

// Count returns how many spans have the given kind.
func Count(spans []trace.Span, kind trace.Kind) int {
	n := 0
	for _, s := range spans {
		if s.Kind == kind {
			n++
		}
	}
	return n
}

// Require asserts at least min spans of the given kind were recorded.
func Require(t testing.TB, spans []trace.Span, kind trace.Kind, min int) {
	t.Helper()
	if got := Count(spans, kind); got < min {
		t.Fatalf("trace has %d %s spans, want at least %d", got, kind, min)
	}
}
