// Package trace is the virtual-time distributed tracing layer: every
// message transaction the simulated V domain carries can be recorded as
// a span tree — client operation → send → serve (per hop, through
// prefix rewriting, inter-server forwarding and intra-team handoffs) →
// reply — with one wire span per network hop carrying the byte, packet
// and queueing detail the netsim cost model charged.
//
// Tracing is strictly an observer: no tracer method advances a virtual
// clock, so a traced run produces byte-identical measurements to an
// untraced one (the invariant TestTeamOneByteIdenticalToSeed pins).
// Span identifiers are allocated in creation order under one mutex;
// under the deterministic closed-loop workload driver (internal/rig)
// the same seed and workload therefore yield an identical trace,
// byte for byte.
//
// A nil *Tracer is a valid no-op tracer: every method is nil-safe, so
// the kernel and servers thread tracing unconditionally and pay nothing
// when no tracer is installed.
package trace

import (
	"encoding/json"
	"sync"
	"time"

	"repro/internal/netsim"
	"repro/internal/vtime"
)

// SpanID identifies one span within a trace. IDs are dense, start at 1,
// and increase in creation order; 0 means "no span" (used for roots and
// for processes with no current span).
type SpanID uint64

// Kind classifies a span.
type Kind string

// The span kinds of the protocol's anatomy.
const (
	// KindClientOp is a root span: one operation of the client run-time
	// library (Open, Query, ReadFile, ...), covering every attempt.
	KindClientOp Kind = "client-op"
	// KindAttempt is one attempt of an operation under the recovery
	// policy; retries appear as sibling attempts under the client-op.
	KindAttempt Kind = "attempt"
	// KindBackoff is the virtual-time backoff charged between attempts.
	KindBackoff Kind = "backoff"
	// KindRebind is the re-resolution work between attempts (cache
	// invalidation, current-context re-mapping).
	KindRebind Kind = "rebind"
	// KindSend is one message transaction from the sender's side: Send
	// to reply arrival (or classified failure).
	KindSend Kind = "send"
	// KindServe is one server's processing of a delivered request.
	KindServe Kind = "serve"
	// KindForward is a kernel Forward: the transaction moving to
	// another process mid-interpretation (§5.4) or to a team worker.
	KindForward Kind = "forward"
	// KindHandoff is the receptionist's decision to pass a request to a
	// team worker (§3.1); its child forward span is the actual hop.
	KindHandoff Kind = "handoff"
	// KindReply is the Reply completing a transaction.
	KindReply Kind = "reply"
	// KindWire is one network hop (request, forward, reply, move or
	// broadcast frame) with its cost-model detail.
	KindWire Kind = "wire"
	// KindGetPid is a service-name lookup (§4.2).
	KindGetPid Kind = "getpid"
	// KindServerExit is a zero-length event recording why a serving
	// team stopped: "process-dead" for a clean destroy, "host-down"
	// for a crash (the classification Server.Err carries, made
	// distinguishable from the trace alone).
	KindServerExit Kind = "server-exit"
	// KindLease is a lease-protocol event (PROTOCOL.md §13): named
	// "grant [p]", "renew [p]", "hit [p]", "negative-hit [p]",
	// "expired [p]", "invalidate [p]" or "callback [p]". Grant, renew
	// and hit events carry the lease stamp in LeaseGrant/LeaseExpire;
	// invalidate events record the commit time as their Start, which is
	// what the staleness invariant in check.go keys on.
	KindLease Kind = "lease"
)

// ProcID names the process a span ran on. The zero value marks spans
// that belong to no process clock (wire spans).
type ProcID struct {
	Name string
	PID  uint32
	Host string
}

// Span is one recorded interval of virtual time. Fields are fixed (no
// maps) so the JSON rendering is byte-stable for golden traces.
type Span struct {
	ID     SpanID `json:"id"`
	Parent SpanID `json:"parent,omitempty"`
	Kind   Kind   `json:"kind"`
	Name   string `json:"name"`
	Proc   string `json:"proc,omitempty"`
	PID    uint32 `json:"pid,omitempty"`
	Host   string `json:"host,omitempty"`
	// Start and End are virtual nanoseconds. For failure spans End is
	// the virtual time the failure was classified.
	Start int64 `json:"start_ns"`
	End   int64 `json:"end_ns"`
	// Err is the failure classification; empty means success.
	Err string `json:"err,omitempty"`
	// Bytes/Packets/Retrans/Queue carry the network cost detail of
	// wire spans (and of spans annotated with a transfer).
	Bytes   int   `json:"bytes,omitempty"`
	Packets int   `json:"packets,omitempty"`
	Retrans int   `json:"retrans,omitempty"`
	Queue   int64 `json:"queue_ns,omitempty"`
	// Local marks a same-host hop, which never touches the wire.
	Local bool `json:"local,omitempty"`
	// Bcast marks a broadcast or multicast frame (always one packet).
	Bcast bool `json:"bcast,omitempty"`
	// Group marks a send/forward addressed to a process group, where
	// first-reply-wins allows more than one reply span in the subtree.
	Group bool `json:"group,omitempty"`
	// LeaseGrant/LeaseExpire carry the lease stamp of KindLease spans:
	// the virtual time the lease was granted (or renewed) and its
	// absolute expiry. Zero on every other kind, so the golden traces
	// predating leases render unchanged.
	LeaseGrant  int64 `json:"lease_grant_ns,omitempty"`
	LeaseExpire int64 `json:"lease_expire_ns,omitempty"`
	// Incomplete marks a span that was never ended — a leak the
	// invariant checker rejects.
	Incomplete bool `json:"incomplete,omitempty"`

	ended bool
}

// Frame is one frame (or packet burst) on the shared medium, recorded
// straight from netsim — the per-packet wire record.
type Frame struct {
	Src     uint16 `json:"src"`
	Dst     uint16 `json:"dst,omitempty"` // 0 for broadcast/multicast
	Cast    string `json:"cast"`
	Bytes   int    `json:"bytes"`
	Packets int    `json:"packets"`
	Retrans int    `json:"retrans,omitempty"`
	At      int64  `json:"at_ns"`
	Queue   int64  `json:"queue_ns,omitempty"`
	Latency int64  `json:"latency_ns"`
}

// Tracer records spans and wire frames. All methods are safe for
// concurrent use and all are no-ops on a nil receiver.
type Tracer struct {
	mu     sync.Mutex
	spans  []*Span
	frames []Frame

	// s non-nil selects sampled mode (sample.go): bounded retention
	// instead of the O(ops) span slice.
	s *sampleState
}

// New returns an empty tracer in full-retention mode.
func New() *Tracer { return &Tracer{} }

// Start opens a span and returns its id. parent 0 makes it a root.
func (t *Tracer) Start(parent SpanID, kind Kind, name string, at vtime.Time, who ProcID) SpanID {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.s != nil {
		return t.s.start(parent, kind, name, int64(at), who)
	}
	sp := &Span{
		ID:     SpanID(len(t.spans) + 1),
		Parent: parent,
		Kind:   kind,
		Name:   name,
		Proc:   who.Name,
		PID:    who.PID,
		Host:   who.Host,
		Start:  int64(at),
	}
	t.spans = append(t.spans, sp)
	return sp.ID
}

// End closes a span at the given virtual time.
func (t *Tracer) End(id SpanID, at vtime.Time) { t.Fail(id, at, "") }

// Fail closes a span with a failure classification. An empty class is
// a plain End.
func (t *Tracer) Fail(id SpanID, at vtime.Time, class string) {
	if t == nil || id == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.s != nil {
		t.s.fail(id, int64(at), class)
		return
	}
	sp := t.span(id)
	if sp == nil || sp.ended {
		return
	}
	sp.End = int64(at)
	sp.Err = class
	sp.ended = true
}

// Event records a zero-length span (server exits, annotations).
func (t *Tracer) Event(parent SpanID, kind Kind, name string, at vtime.Time, who ProcID, class string) SpanID {
	id := t.Start(parent, kind, name, at, who)
	t.Fail(id, at, class)
	return id
}

// Wire records one completed network hop as a wire span under parent.
func (t *Tracer) Wire(parent SpanID, name string, start vtime.Time, dur time.Duration, bytes int, det netsim.HopDetail, local, bcast bool) SpanID {
	if t == nil {
		return 0
	}
	id := t.Start(parent, KindWire, name, start, ProcID{})
	t.mu.Lock()
	if sp := t.span(id); sp != nil {
		sp.Bytes = bytes
		sp.Packets = det.Packets
		sp.Retrans = det.Retransmits
		sp.Queue = int64(det.Queue)
		sp.Local = local
		sp.Bcast = bcast
	}
	t.mu.Unlock()
	// End through Fail so sampled-mode subtree accounting sees it.
	t.End(id, start+dur)
	return id
}

// SetGroup marks a span as a group (multicast) transaction.
func (t *Tracer) SetGroup(id SpanID) {
	if t == nil || id == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if sp := t.span(id); sp != nil {
		sp.Group = true
	}
}

// SetLease annotates a span with a lease stamp: grant time and absolute
// expiry (virtual nanoseconds).
func (t *Tracer) SetLease(id SpanID, grant, expire vtime.Time) {
	if t == nil || id == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if sp := t.span(id); sp != nil {
		sp.LeaseGrant = int64(grant)
		sp.LeaseExpire = int64(expire)
	}
}

// SetTransfer annotates a span with the bytes it carried.
func (t *Tracer) SetTransfer(id SpanID, bytes int) {
	if t == nil || id == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if sp := t.span(id); sp != nil {
		sp.Bytes = bytes
	}
}

// span returns the span with the given id. Caller holds t.mu. In
// sampled mode only spans of still-open subtrees are addressable;
// annotations on retired spans are dropped.
func (t *Tracer) span(id SpanID) *Span {
	if t.s != nil {
		return t.s.live[id]
	}
	if id == 0 || int(id) > len(t.spans) {
		return nil
	}
	return t.spans[id-1]
}

// RecordFrame implements netsim.FrameRecorder: every frame the network
// carries is appended to the trace's wire record.
func (t *Tracer) RecordFrame(ev netsim.FrameEvent) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.s != nil {
		// Sampled mode keeps no per-frame record: the frame log is
		// O(packets), exactly the growth sampling exists to avoid.
		return
	}
	t.frames = append(t.frames, Frame{
		Src:     uint16(ev.Src),
		Dst:     uint16(ev.Dst),
		Cast:    ev.Cast,
		Bytes:   ev.Bytes,
		Packets: ev.Packets,
		Retrans: ev.Retransmits,
		At:      int64(ev.At),
		Queue:   int64(ev.Queue),
		Latency: int64(ev.Latency),
	})
}

// Len returns the number of recorded spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.s != nil {
		return len(t.s.retained) + len(t.s.live)
	}
	return len(t.spans)
}

// Snapshot returns a copy of the recorded spans in id order. Spans not
// yet ended are marked Incomplete.
func (t *Tracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.s != nil {
		return t.s.snapshot()
	}
	out := make([]Span, len(t.spans))
	for i, sp := range t.spans {
		out[i] = *sp
		if !sp.ended {
			out[i].Incomplete = true
		}
	}
	return out
}

// Frames returns a copy of the recorded wire frames.
func (t *Tracer) Frames() []Frame {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Frame(nil), t.frames...)
}

// Document is the JSON export schema.
type Document struct {
	Version int     `json:"version"`
	Spans   []Span  `json:"spans"`
	Frames  []Frame `json:"frames"`
}

// JSON renders the trace as indented JSON. The rendering is
// deterministic: fixed struct fields, spans in id order, frames in
// record order.
func (t *Tracer) JSON() ([]byte, error) {
	doc := Document{Version: 1, Spans: t.Snapshot(), Frames: t.Frames()}
	if doc.Spans == nil {
		doc.Spans = []Span{}
	}
	if doc.Frames == nil {
		doc.Frames = []Frame{}
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
