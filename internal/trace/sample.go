package trace

import (
	"sort"
	"time"
)

// SampleConfig selects sampled-tracing mode (PROTOCOL.md §15). The full
// tracer is O(ops) memory, which caps it near 10⁴ operations; a sampled
// tracer retains O(ops/HeadEvery + anomalies) complete span subtrees and
// discards the rest as their operations finish, so population-scale
// workloads (10⁶ names, §14) can run traced.
//
// Two rules compose:
//
//   - Head sampling by client lane: each process's root spans are
//     counted, and every HeadEvery-th root (the 1st, the
//     HeadEvery+1-th, ...) is retained in full. Roots are counted per
//     process, and each lane's operations start in its own program
//     order, so the set of head-retained roots is deterministic even
//     when lanes interleave.
//
//   - Tail retention of anomalies: a root whose subtree recorded any
//     failure classification, or whose total duration reached SlowOver,
//     is always retained — slow, failed and stale operations survive in
//     full even when head sampling would have dropped them.
//
// Retained subtrees are complete (every span keeps its parent), so the
// invariant checker runs unchanged on a sampled trace.
type SampleConfig struct {
	// HeadEvery retains every n-th root per process; values < 1 mean 1
	// (retain everything, tail rules moot).
	HeadEvery int
	// SlowOver, when > 0, always retains roots at least this long.
	SlowOver time.Duration
}

// NewSampled returns a tracer in sampled mode.
func NewSampled(cfg SampleConfig) *Tracer {
	if cfg.HeadEvery < 1 {
		cfg.HeadEvery = 1
	}
	return &Tracer{s: &sampleState{
		cfg:        cfg,
		live:       make(map[SpanID]*Span),
		rootOf:     make(map[SpanID]SpanID),
		roots:      make(map[SpanID]*rootState),
		seenByProc: make(map[string]uint64),
	}}
}

// Sampled reports whether the tracer is in sampled mode.
func (t *Tracer) Sampled() bool { return t != nil && t.s != nil }

// rootState tracks one open root subtree until its last span ends.
type rootState struct {
	spans    []SpanID // subtree members in creation order
	open     int      // spans not yet ended
	headKeep bool
	anomaly  bool
}

// sampleState is the sampled-mode storage: open subtrees live in maps,
// finished subtrees either move to retained or vanish.
type sampleState struct {
	cfg           SampleConfig
	nextID        SpanID
	live          map[SpanID]*Span
	rootOf        map[SpanID]SpanID
	roots         map[SpanID]*rootState
	seenByProc    map[string]uint64
	retained      []*Span
	rootsSeen     uint64
	rootsRetained uint64
}

// start allocates a span in sampled mode. Caller holds t.mu.
func (s *sampleState) start(parent SpanID, kind Kind, name string, at int64, who ProcID) SpanID {
	s.nextID++
	sp := &Span{
		ID:     s.nextID,
		Parent: parent,
		Kind:   kind,
		Name:   name,
		Proc:   who.Name,
		PID:    who.PID,
		Host:   who.Host,
		Start:  at,
	}
	root, ok := s.rootOf[parent]
	if !ok {
		// A new root — or a span whose parent already retired, which
		// starts a subtree of its own so retained trees stay complete.
		sp.Parent = 0
		root = sp.ID
		s.rootsSeen++
		n := s.seenByProc[who.Name]
		s.seenByProc[who.Name] = n + 1
		s.roots[root] = &rootState{headKeep: n%uint64(s.cfg.HeadEvery) == 0}
	}
	s.live[sp.ID] = sp
	s.rootOf[sp.ID] = root
	rs := s.roots[root]
	rs.spans = append(rs.spans, sp.ID)
	rs.open++
	return sp.ID
}

// fail ends a span in sampled mode. Caller holds t.mu.
func (s *sampleState) fail(id SpanID, at int64, class string) {
	sp := s.live[id]
	if sp == nil || sp.ended {
		return
	}
	sp.End = at
	sp.Err = class
	sp.ended = true
	root := s.rootOf[id]
	rs := s.roots[root]
	if class != "" {
		rs.anomaly = true
	}
	rs.open--
	if rs.open == 0 {
		s.finish(root, rs)
	}
}

// finish retires a drained subtree: retained in full or dropped whole.
// Caller holds t.mu.
func (s *sampleState) finish(root SpanID, rs *rootState) {
	rootSpan := s.live[root]
	slow := s.cfg.SlowOver > 0 && time.Duration(rootSpan.End-rootSpan.Start) >= s.cfg.SlowOver
	keep := rs.headKeep || rs.anomaly || slow
	for _, id := range rs.spans {
		if keep {
			s.retained = append(s.retained, s.live[id])
		}
		delete(s.live, id)
		delete(s.rootOf, id)
	}
	delete(s.roots, root)
	if keep {
		s.rootsRetained++
	}
}

// snapshot copies retained spans in id order, then any still-open
// subtree members (marked Incomplete) so a mid-run dump is honest.
// Caller holds t.mu.
func (s *sampleState) snapshot() []Span {
	out := make([]Span, 0, len(s.retained)+len(s.live))
	for _, sp := range s.retained {
		out = append(out, *sp)
	}
	for _, sp := range s.live {
		c := *sp
		if !sp.ended {
			c.Incomplete = true
		}
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// RootsSeen returns how many root spans the sampled tracer observed
// (0 in full mode, where Len covers the question).
func (t *Tracer) RootsSeen() uint64 {
	if t == nil || t.s == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.s.rootsSeen
}

// RootsRetained returns how many root subtrees the sampled tracer kept.
func (t *Tracer) RootsRetained() uint64 {
	if t == nil || t.s == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.s.rootsRetained
}
