package trace

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/vtime"
)

// CheckOptions parameterises the invariant checker.
type CheckOptions struct {
	// Model, when set, enables the wire-span packet accounting check
	// against the cost model's fragmentation size.
	Model *vtime.CostModel
	// MaxForwardDepth bounds the forward chain of a single transaction
	// (default 16 — far above the two rewrite hops the prefix design
	// ever produces, but low enough to catch a forwarding loop).
	MaxForwardDepth int
}

// Check asserts the protocol-level invariants of a recorded trace:
//
//  1. no span leaks — every started span ended (no Incomplete spans);
//  2. parent links are well-formed: each parent exists and was created
//     before its child (Parent < ID), so the span graph is acyclic by
//     construction;
//  3. send termination — every successful non-group send span contains
//     exactly one successful reply in its own transaction (not counting
//     nested sends); a group send contains at least one; a failed send
//     carries a non-empty failure classification;
//  4. forward chains are bounded: no span has more than MaxForwardDepth
//     forward ancestors;
//  5. per-process virtual time is monotone: for each (PID, proc) the
//     span start times never decrease in creation order, and every span
//     ends at or after it starts;
//  6. wire accounting matches the netsim cost model: local hops carry
//     zero packets, broadcast/multicast frames exactly one, and every
//     remote unicast hop exactly PacketsFor(bytes) packets.
//
// A nil error means the trace is protocol-clean.
func Check(spans []Span, opt CheckOptions) error {
	if opt.MaxForwardDepth <= 0 {
		opt.MaxForwardDepth = 16
	}
	byID := make(map[SpanID]*Span, len(spans))
	children := make(map[SpanID][]*Span, len(spans))
	for i := range spans {
		sp := &spans[i]
		if _, dup := byID[sp.ID]; dup {
			return fmt.Errorf("trace: duplicate span id %d", sp.ID)
		}
		byID[sp.ID] = sp
	}
	lastStart := make(map[ProcID]int64)
	for i := range spans {
		sp := &spans[i]
		// (1) leaks.
		if sp.Incomplete {
			return fmt.Errorf("trace: span %d (%s %q) never ended", sp.ID, sp.Kind, sp.Name)
		}
		// (2) parent links.
		if sp.Parent != 0 {
			parent, ok := byID[sp.Parent]
			if !ok {
				return fmt.Errorf("trace: span %d (%s %q) has unknown parent %d", sp.ID, sp.Kind, sp.Name, sp.Parent)
			}
			if parent.ID >= sp.ID {
				return fmt.Errorf("trace: span %d has parent %d created after it", sp.ID, sp.Parent)
			}
			children[sp.Parent] = append(children[sp.Parent], sp)
		}
		// (5) monotone clocks: End covers Start, and per-process starts
		// never run backwards. Wire spans carry no process identity and
		// are excluded from the per-process scan.
		if sp.End < sp.Start {
			return fmt.Errorf("trace: span %d (%s %q) ends %d before it starts %d", sp.ID, sp.Kind, sp.Name, sp.End, sp.Start)
		}
		if sp.PID != 0 {
			who := ProcID{Name: sp.Proc, PID: sp.PID, Host: sp.Host}
			if prev, ok := lastStart[who]; ok && sp.Start < prev {
				return fmt.Errorf("trace: process %s pid %d time ran backwards: span %d starts %d after a span at %d",
					sp.Proc, sp.PID, sp.ID, sp.Start, prev)
			}
			lastStart[who] = sp.Start
		}
		// (6) wire accounting.
		if sp.Kind == KindWire && opt.Model != nil {
			want := netsim.PacketsFor(sp.Bytes, opt.Model.MaxDataPerPacket)
			switch {
			case sp.Local:
				want = 0
			case sp.Bcast:
				want = 1
			}
			if sp.Packets != want {
				return fmt.Errorf("trace: wire span %d (%q, %d bytes, local=%v bcast=%v) carries %d packets, cost model says %d",
					sp.ID, sp.Name, sp.Bytes, sp.Local, sp.Bcast, sp.Packets, want)
			}
		}
		// (4) forward depth, following parent links.
		depth := 0
		for cur := sp; cur.Parent != 0; {
			cur = byID[cur.Parent]
			if cur == nil {
				break
			}
			if cur.Kind == KindForward {
				depth++
				if depth > opt.MaxForwardDepth {
					return fmt.Errorf("trace: span %d has a forward chain deeper than %d", sp.ID, opt.MaxForwardDepth)
				}
			}
		}
	}
	// (3) send termination.
	for i := range spans {
		sp := &spans[i]
		if sp.Kind != KindSend {
			continue
		}
		if sp.Err != "" {
			continue // classified failure: nothing more to demand
		}
		replies, group := tallyReplies(sp.ID, children)
		group = group || sp.Group
		switch {
		case group && replies < 1:
			return fmt.Errorf("trace: group send span %d (%q) succeeded with no successful reply", sp.ID, sp.Name)
		case !group && replies != 1:
			return fmt.Errorf("trace: send span %d (%q) succeeded with %d successful replies, want exactly 1", sp.ID, sp.Name, replies)
		}
	}
	return nil
}

// tallyReplies counts successful reply spans in the transaction rooted
// at id, without descending into nested send spans (those are separate
// transactions with their own replies). It also reports whether the
// transaction passed through a group hop (first-reply-wins), which
// relaxes the exactly-one-reply demand to at-least-one.
func tallyReplies(id SpanID, children map[SpanID][]*Span) (replies int, group bool) {
	for _, c := range children[id] {
		if c.Kind == KindSend {
			continue
		}
		if c.Group {
			group = true
		}
		if c.Kind == KindReply && c.Err == "" {
			replies++
		}
		r, g := tallyReplies(c.ID, children)
		replies += r
		group = group || g
	}
	return replies, group
}
