package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/netsim"
	"repro/internal/vtime"
)

// CheckOptions parameterises the invariant checker.
type CheckOptions struct {
	// Model, when set, enables the wire-span packet accounting check
	// against the cost model's fragmentation size.
	Model *vtime.CostModel
	// MaxForwardDepth bounds the forward chain of a single transaction
	// (default 16 — far above the two rewrite hops the prefix design
	// ever produces, but low enough to catch a forwarding loop).
	MaxForwardDepth int
	// LeaseBound, when positive, enables the lease staleness invariant
	// (#7): no lease outlives the bound, no cache hit is served at or
	// after its lease's expiry, and after an invalidation commit for a
	// name, no hit backed by a lease granted at or before the commit
	// occurs more than LeaseBound past it (PROTOCOL.md §13).
	LeaseBound time.Duration
}

// Check asserts the protocol-level invariants of a recorded trace:
//
//  1. no span leaks — every started span ended (no Incomplete spans);
//  2. parent links are well-formed: each parent exists and was created
//     before its child (Parent < ID), so the span graph is acyclic by
//     construction;
//  3. send termination — every successful non-group send span contains
//     exactly one successful reply in its own transaction (not counting
//     nested sends); a group send contains at least one; a failed send
//     carries a non-empty failure classification;
//  4. forward chains are bounded: no span has more than MaxForwardDepth
//     forward ancestors;
//  5. per-process virtual time is monotone: for each (PID, proc) the
//     span start times never decrease in creation order, and every span
//     ends at or after it starts;
//  6. wire accounting matches the netsim cost model: local hops carry
//     zero packets, broadcast/multicast frames exactly one, and every
//     remote unicast hop exactly PacketsFor(bytes) packets;
//  7. (with LeaseBound set) lease staleness is bounded: every lease
//     stamp spans at most LeaseBound, every cache hit starts strictly
//     before its lease's expiry, and for every invalidation commit of a
//     name at time Ti, every hit of that name backed by a lease granted
//     at or before Ti starts at or before Ti+LeaseBound.
//
// A nil error means the trace is protocol-clean.
func Check(spans []Span, opt CheckOptions) error {
	if opt.MaxForwardDepth <= 0 {
		opt.MaxForwardDepth = 16
	}
	byID := make(map[SpanID]*Span, len(spans))
	children := make(map[SpanID][]*Span, len(spans))
	for i := range spans {
		sp := &spans[i]
		if _, dup := byID[sp.ID]; dup {
			return fmt.Errorf("trace: duplicate span id %d", sp.ID)
		}
		byID[sp.ID] = sp
	}
	lastStart := make(map[ProcID]int64)
	for i := range spans {
		sp := &spans[i]
		// (1) leaks.
		if sp.Incomplete {
			return fmt.Errorf("trace: span %d (%s %q) never ended", sp.ID, sp.Kind, sp.Name)
		}
		// (2) parent links.
		if sp.Parent != 0 {
			parent, ok := byID[sp.Parent]
			if !ok {
				return fmt.Errorf("trace: span %d (%s %q) has unknown parent %d", sp.ID, sp.Kind, sp.Name, sp.Parent)
			}
			if parent.ID >= sp.ID {
				return fmt.Errorf("trace: span %d has parent %d created after it", sp.ID, sp.Parent)
			}
			children[sp.Parent] = append(children[sp.Parent], sp)
		}
		// (5) monotone clocks: End covers Start, and per-process starts
		// never run backwards. Wire spans carry no process identity and
		// are excluded from the per-process scan.
		if sp.End < sp.Start {
			return fmt.Errorf("trace: span %d (%s %q) ends %d before it starts %d", sp.ID, sp.Kind, sp.Name, sp.End, sp.Start)
		}
		if sp.PID != 0 {
			who := ProcID{Name: sp.Proc, PID: sp.PID, Host: sp.Host}
			if prev, ok := lastStart[who]; ok && sp.Start < prev {
				return fmt.Errorf("trace: process %s pid %d time ran backwards: span %d starts %d after a span at %d",
					sp.Proc, sp.PID, sp.ID, sp.Start, prev)
			}
			lastStart[who] = sp.Start
		}
		// (6) wire accounting.
		if sp.Kind == KindWire && opt.Model != nil {
			want := netsim.PacketsFor(sp.Bytes, opt.Model.MaxDataPerPacket)
			switch {
			case sp.Local:
				want = 0
			case sp.Bcast:
				want = 1
			}
			if sp.Packets != want {
				return fmt.Errorf("trace: wire span %d (%q, %d bytes, local=%v bcast=%v) carries %d packets, cost model says %d",
					sp.ID, sp.Name, sp.Bytes, sp.Local, sp.Bcast, sp.Packets, want)
			}
		}
		// (4) forward depth, following parent links.
		depth := 0
		for cur := sp; cur.Parent != 0; {
			cur = byID[cur.Parent]
			if cur == nil {
				break
			}
			if cur.Kind == KindForward {
				depth++
				if depth > opt.MaxForwardDepth {
					return fmt.Errorf("trace: span %d has a forward chain deeper than %d", sp.ID, opt.MaxForwardDepth)
				}
			}
		}
	}
	// (3) send termination.
	for i := range spans {
		sp := &spans[i]
		if sp.Kind != KindSend {
			continue
		}
		if sp.Err != "" {
			continue // classified failure: nothing more to demand
		}
		replies, group := tallyReplies(sp.ID, children)
		group = group || sp.Group
		switch {
		case group && replies < 1:
			return fmt.Errorf("trace: group send span %d (%q) succeeded with no successful reply", sp.ID, sp.Name)
		case !group && replies != 1:
			return fmt.Errorf("trace: send span %d (%q) succeeded with %d successful replies, want exactly 1", sp.ID, sp.Name, replies)
		}
	}
	// (7) lease staleness.
	if opt.LeaseBound > 0 {
		if err := checkLeases(spans, opt.LeaseBound); err != nil {
			return err
		}
	}
	return nil
}

// checkLeases enforces invariant (7): the staleness of every lease-served
// read is bounded by the lease length.
func checkLeases(spans []Span, bound time.Duration) error {
	// Invalidation commits per name, in span order (creation order, which
	// is not necessarily time order across processes — each hit is checked
	// against every commit).
	commits := make(map[string][]int64)
	for i := range spans {
		sp := &spans[i]
		if sp.Kind != KindLease {
			continue
		}
		if ev, name := leaseEvent(sp); ev == "invalidate" {
			commits[name] = append(commits[name], sp.Start)
		}
	}
	for i := range spans {
		sp := &spans[i]
		if sp.Kind != KindLease {
			continue
		}
		ev, name := leaseEvent(sp)
		if sp.LeaseExpire != 0 && sp.LeaseExpire-sp.LeaseGrant > int64(bound) {
			return fmt.Errorf("trace: lease span %d (%q) spans %dns, beyond the %v bound",
				sp.ID, sp.Name, sp.LeaseExpire-sp.LeaseGrant, bound)
		}
		if ev != "hit" && ev != "negative-hit" {
			continue
		}
		if sp.LeaseExpire != 0 && sp.Start >= sp.LeaseExpire {
			return fmt.Errorf("trace: lease hit span %d (%q) at %dns served at or after its expiry %dns",
				sp.ID, sp.Name, sp.Start, sp.LeaseExpire)
		}
		for _, ti := range commits[name] {
			if sp.LeaseGrant <= ti && sp.Start > ti+int64(bound) {
				return fmt.Errorf("trace: stale read: span %d (%q) at %dns serves a lease granted at %dns, %dns after the invalidation commit at %dns (bound %v)",
					sp.ID, sp.Name, sp.Start, sp.LeaseGrant, sp.Start-ti, ti, bound)
			}
		}
	}
	return nil
}

// StaleWindow is one lease-served read that observed a mapping after an
// invalidation of its name committed: the cached pair was granted at or
// before the commit, yet a hit served it Window nanoseconds past the
// commit. The staleness invariant bounds every Window by the lease
// length; A17 reports the maxima.
type StaleWindow struct {
	Name   string `json:"name"`
	Commit int64  `json:"commit_ns"`
	Hit    int64  `json:"hit_ns"`
	Window int64  `json:"window_ns"`
}

// StaleWindows scans a trace for lease hits that served a mapping after
// an invalidation of the name committed, returning the widest window per
// name in name order. An empty result means every read after every
// invalidation resolved fresh.
func StaleWindows(spans []Span) []StaleWindow {
	commits := make(map[string][]int64)
	for i := range spans {
		sp := &spans[i]
		if sp.Kind != KindLease {
			continue
		}
		if ev, name := leaseEvent(sp); ev == "invalidate" {
			commits[name] = append(commits[name], sp.Start)
		}
	}
	widest := make(map[string]StaleWindow)
	for i := range spans {
		sp := &spans[i]
		if sp.Kind != KindLease {
			continue
		}
		ev, name := leaseEvent(sp)
		if ev != "hit" && ev != "negative-hit" {
			continue
		}
		for _, ti := range commits[name] {
			if sp.LeaseGrant <= ti && sp.Start > ti {
				w := StaleWindow{Name: name, Commit: ti, Hit: sp.Start, Window: sp.Start - ti}
				if prev, ok := widest[name]; !ok || w.Window > prev.Window {
					widest[name] = w
				}
			}
		}
	}
	names := make([]string, 0, len(widest))
	for n := range widest {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]StaleWindow, 0, len(names))
	for _, n := range names {
		out = append(out, widest[n])
	}
	return out
}

// leaseEvent splits a KindLease span name ("hit [bin]hello") into its
// event and the affected name.
func leaseEvent(sp *Span) (event, name string) {
	ev, rest, _ := strings.Cut(sp.Name, " ")
	return ev, rest
}

// tallyReplies counts successful reply spans in the transaction rooted
// at id, without descending into nested send spans (those are separate
// transactions with their own replies). It also reports whether the
// transaction passed through a group hop (first-reply-wins), which
// relaxes the exactly-one-reply demand to at-least-one.
func tallyReplies(id SpanID, children map[SpanID][]*Span) (replies int, group bool) {
	for _, c := range children[id] {
		if c.Kind == KindSend {
			continue
		}
		if c.Group {
			group = true
		}
		if c.Kind == KindReply && c.Err == "" {
			replies++
		}
		r, g := tallyReplies(c.ID, children)
		replies += r
		group = group || g
	}
	return replies, group
}
