package pipeserver

import (
	"errors"
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/proto"
	"repro/internal/vio"
	"repro/internal/vtime"
)

func startRig(t *testing.T) (*Server, *kernel.Process, *kernel.Process) {
	t.Helper()
	k := kernel.New(netsim.New(vtime.DefaultModel(), 1))
	host := k.NewHost("services")
	s, err := Start(host)
	if err != nil {
		t.Fatal(err)
	}
	wsA := k.NewHost("ws-a")
	wsB := k.NewHost("ws-b")
	writer, err := wsA.NewProcess("writer")
	if err != nil {
		t.Fatal(err)
	}
	reader, err := wsB.NewProcess("reader")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		writer.Destroy()
		reader.Destroy()
	})
	return s, writer, reader
}

func open(t *testing.T, proc *kernel.Process, s *Server, name string, mode uint32) *vio.File {
	t.Helper()
	req := &proto.Message{Op: proto.OpCreateInstance}
	proto.SetCSName(req, uint32(core.CtxDefault), name)
	proto.SetOpenMode(req, mode)
	reply, err := proc.Send(req, s.PID())
	if err != nil {
		t.Fatal(err)
	}
	if err := proto.ReplyError(reply.Op); err != nil {
		t.Fatalf("open %q: %v", name, err)
	}
	return vio.NewFile(proc, s.PID(), proto.GetInstanceInfo(reply))
}

func TestPipeTransfer(t *testing.T) {
	s, wProc, rProc := startRig(t)
	w := open(t, wProc, s, "logs", proto.ModeWrite|proto.ModeCreate)
	r := open(t, rProc, s, "logs", proto.ModeRead)

	if _, err := w.Write([]byte("first line\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, err := r.Read(buf)
	if err != nil || string(buf[:n]) != "first line\n" {
		t.Fatalf("read %q, %v", buf[:n], err)
	}
	// Drained: an open pipe answers Retry, not EOF.
	if _, err := r.Read(buf); !errors.Is(err, proto.ErrRetry) {
		t.Fatalf("empty open pipe err = %v", err)
	}
	// More data arrives; the reader's retry loop picks it up.
	if _, err := w.Write([]byte("second")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	n, err = r.ReadRetry(buf, 5)
	if err != nil || string(buf[:n]) != "second" {
		t.Fatalf("retry read %q, %v", buf[:n], err)
	}
}

func TestPipeEOFAfterWriterCloses(t *testing.T) {
	s, wProc, rProc := startRig(t)
	w := open(t, wProc, s, "p", proto.ModeWrite|proto.ModeCreate)
	r := open(t, rProc, s, "p", proto.ModeRead)
	if _, err := w.Write([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Remaining data drains...
	buf := make([]byte, 16)
	n, err := r.Read(buf)
	if err != nil || string(buf[:n]) != "tail" {
		t.Fatalf("drain read %q, %v", buf[:n], err)
	}
	// ...then end-of-file, not Retry.
	if _, err := r.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(buf); err != io.EOF {
		t.Fatalf("closed empty pipe err = %v", err)
	}
	// Writes to a closed pipe fail.
	w2 := open(t, wProc, s, "p", proto.ModeWrite)
	if _, err := w2.Write([]byte("x")); err == nil {
		t.Fatal("write to closed pipe should fail")
	}
}

func TestPipeBounded(t *testing.T) {
	s, wProc, _ := startRig(t)
	w := open(t, wProc, s, "full", proto.ModeWrite|proto.ModeCreate)
	// Fill the pipe to capacity.
	chunk := make([]byte, vio.DefaultBlockSize)
	written := 0
	for written < DefaultCapacity {
		n, err := w.Write(chunk)
		written += n
		if err != nil {
			t.Fatalf("fill failed at %d: %v", written, err)
		}
	}
	if _, err := w.Write([]byte("overflow")); !errors.Is(err, proto.ErrRetry) {
		t.Fatalf("full pipe err = %v", err)
	}
}

func TestPipeDirectoryAndQuery(t *testing.T) {
	s, wProc, rProc := startRig(t)
	w := open(t, wProc, s, "a", proto.ModeWrite|proto.ModeCreate)
	open(t, rProc, s, "a", proto.ModeRead)
	open(t, wProc, s, "b", proto.ModeWrite|proto.ModeCreate)
	if _, err := w.Write([]byte("12345")); err != nil {
		t.Fatal(err)
	}

	q := &proto.Message{Op: proto.OpQueryObject}
	proto.SetCSName(q, uint32(core.CtxDefault), "a")
	reply, err := rProc.Send(q, s.PID())
	if err != nil || reply.Op != proto.ReplyOK {
		t.Fatalf("query = %v, %v", reply, err)
	}
	d, _, err := proto.DecodeDescriptor(reply.Segment)
	if err != nil || d.Tag != proto.TagPipe || d.Size != 5 {
		t.Fatalf("descriptor = %+v, %v", d, err)
	}
	if d.TypeSpecific[0] != 1 || d.TypeSpecific[1] != 1 {
		t.Fatalf("readers/writers = %v", d.TypeSpecific)
	}

	dirReq := &proto.Message{Op: proto.OpCreateInstance}
	proto.SetCSName(dirReq, uint32(core.CtxDefault), "")
	proto.SetOpenMode(dirReq, proto.ModeRead|proto.ModeDirectory)
	reply, err = rProc.Send(dirReq, s.PID())
	if err != nil || reply.Op != proto.ReplyOK {
		t.Fatalf("open dir = %v, %v", reply, err)
	}
	f := vio.NewFile(rProc, s.PID(), proto.GetInstanceInfo(reply))
	raw, err := f.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	records, err := proto.DecodeDescriptors(raw)
	if err != nil || len(records) != 2 {
		t.Fatalf("records = %v, %v", records, err)
	}
}

func TestPipeRemove(t *testing.T) {
	s, wProc, _ := startRig(t)
	open(t, wProc, s, "gone", proto.ModeWrite|proto.ModeCreate)
	rm := &proto.Message{Op: proto.OpRemoveObject}
	proto.SetCSName(rm, uint32(core.CtxDefault), "gone")
	reply, err := wProc.Send(rm, s.PID())
	if err != nil || reply.Op != proto.ReplyOK {
		t.Fatalf("remove = %v, %v", reply, err)
	}
	if s.Count() != 0 {
		t.Fatal("pipe survived removal")
	}
}

func TestPipeOpenMissingWithoutCreate(t *testing.T) {
	s, wProc, _ := startRig(t)
	req := &proto.Message{Op: proto.OpCreateInstance}
	proto.SetCSName(req, uint32(core.CtxDefault), "ghost")
	proto.SetOpenMode(req, proto.ModeRead)
	reply, err := wProc.Send(req, s.PID())
	if err != nil || reply.Op != proto.ReplyNotFound {
		t.Fatalf("reply = %v, %v", reply, err)
	}
}
