package pipeserver

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/proto"
	"repro/internal/vio"
	"repro/internal/vtime"
)

// TestTeamStressPipeServer runs a writer/reader pair per pipe, many
// pipes concurrently, against one pipe-server team.
func TestTeamStressPipeServer(t *testing.T) {
	k := kernel.New(netsim.New(vtime.DefaultModel(), 1))
	s, err := Start(k.NewHost("services"), core.WithTeam(3))
	if err != nil {
		t.Fatal(err)
	}

	openPipe := func(proc *kernel.Process, name string, mode uint32) (*vio.File, error) {
		req := &proto.Message{Op: proto.OpCreateInstance}
		proto.SetCSName(req, uint32(core.CtxDefault), name)
		proto.SetOpenMode(req, mode)
		reply, err := proc.Send(req, s.PID())
		if err != nil {
			return nil, err
		}
		if err := proto.ReplyError(reply.Op); err != nil {
			return nil, err
		}
		return vio.NewFile(proc, s.PID(), proto.GetInstanceInfo(reply)), nil
	}

	const pipes, lines = 5, 4
	var wg sync.WaitGroup
	errs := make(chan error, pipes)
	for i := 0; i < pipes; i++ {
		wProc, err := k.NewHost(fmt.Sprintf("wr%d", i)).NewProcess("writer")
		if err != nil {
			t.Fatal(err)
		}
		rProc, err := k.NewHost(fmt.Sprintf("rd%d", i)).NewProcess("reader")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			wProc.Destroy()
			rProc.Destroy()
		})
		wg.Add(1)
		go func(i int, wProc, rProc *kernel.Process) {
			defer wg.Done()
			name := fmt.Sprintf("stream%d", i)
			w, err := openPipe(wProc, name, proto.ModeWrite|proto.ModeCreate)
			if err != nil {
				errs <- fmt.Errorf("pipe %d open writer: %w", i, err)
				return
			}
			r, err := openPipe(rProc, name, proto.ModeRead)
			if err != nil {
				errs <- fmt.Errorf("pipe %d open reader: %w", i, err)
				return
			}
			for j := 0; j < lines; j++ {
				msg := fmt.Sprintf("pipe %d line %d\n", i, j)
				if _, err := w.Write([]byte(msg)); err != nil {
					errs <- fmt.Errorf("pipe %d write %d: %w", i, j, err)
					return
				}
				if _, err := r.Seek(0, 0); err != nil {
					errs <- fmt.Errorf("pipe %d seek %d: %w", i, j, err)
					return
				}
				buf := make([]byte, 64)
				n, err := r.Read(buf)
				if err != nil || string(buf[:n]) != msg {
					errs <- fmt.Errorf("pipe %d read %d: %q, %v", i, j, buf[:n], err)
					return
				}
			}
		}(i, wProc, rProc)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
