package pipeserver

import (
	"testing"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/proto"
	"repro/internal/trace"
	"repro/internal/trace/tracetest"
	"repro/internal/vio"
)

// TestTraceInvariantsPipeServer runs a writer/reader pair through a
// pipe-server team in a traced domain and checks the trace invariants.
func TestTraceInvariantsPipeServer(t *testing.T) {
	d := tracetest.New()
	s, err := Start(d.K.NewHost("services"), core.WithTeam(2))
	if err != nil {
		t.Fatal(err)
	}
	open := func(proc *kernel.Process, mode uint32) (*vio.File, error) {
		req := &proto.Message{Op: proto.OpCreateInstance}
		proto.SetCSName(req, uint32(core.CtxDefault), "traced-stream")
		proto.SetOpenMode(req, mode)
		reply, err := proc.Send(req, s.PID())
		if err != nil {
			return nil, err
		}
		if err := proto.ReplyError(reply.Op); err != nil {
			return nil, err
		}
		return vio.NewFile(proc, s.PID(), proto.GetInstanceInfo(reply)), nil
	}

	wProc, err := d.K.NewHost("wr").NewProcess("writer")
	if err != nil {
		t.Fatal(err)
	}
	rProc, err := d.K.NewHost("rd").NewProcess("reader")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		wProc.Destroy()
		rProc.Destroy()
	})

	w, err := open(wProc, proto.ModeWrite|proto.ModeCreate)
	if err != nil {
		t.Fatal(err)
	}
	r, err := open(rProc, proto.ModeRead)
	if err != nil {
		t.Fatal(err)
	}
	msg := "traced pipe line\n"
	if _, err := w.Write([]byte(msg)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, err := r.Read(buf)
	if err != nil || string(buf[:n]) != msg {
		t.Fatalf("read: %q, %v", buf[:n], err)
	}

	spans := d.Check(t)
	tracetest.Require(t, spans, trace.KindSend, 4)
	tracetest.Require(t, spans, trace.KindServe, 4)
	tracetest.Require(t, spans, trace.KindReply, 4)
	tracetest.Require(t, spans, trace.KindHandoff, 2)
}
