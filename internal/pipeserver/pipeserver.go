// Package pipeserver implements V-System pipes, one of the data sources
// and sinks the V I/O protocol unifies (§3.2): named, bounded byte
// streams connecting a writing program to a reading program through the
// same Open/Read/Write/Close interface as files.
//
// Because the I/O protocol is synchronous request/response, a read from
// an empty pipe (or a write to a full one) does not block the server: it
// answers with the standard Retry reply, and the client run-time retries
// after a back-off — the pattern V used for not-ready devices. A pipe
// whose writer has closed it drains to end-of-file.
package pipeserver

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/proto"
	"repro/internal/vio"
)

// DefaultCapacity is a pipe's buffer bound in bytes.
const DefaultCapacity = 4096

// pipe is one named pipe.
type pipe struct {
	id       uint32
	name     string
	buf      []byte
	capacity int
	closed   bool // writer closed: drain to EOF
	readers  int
	writers  int
}

// Server is the pipe server.
type Server struct {
	srv   *core.Server
	proc  *kernel.Process
	store *core.MapStore
	reg   *vio.Registry

	mu    sync.Mutex
	pipes map[uint32]*pipe
	next  uint32
}

// Start spawns a pipe server on host. Options (e.g. core.WithTeam)
// configure the serving runtime.
func Start(host *kernel.Host, opts ...core.Option) (*Server, error) {
	proc, err := host.NewProcess("pipe-server")
	if err != nil {
		return nil, err
	}
	s := &Server{
		proc:  proc,
		store: core.NewMapStore(),
		reg:   vio.NewRegistry(),
		pipes: make(map[uint32]*pipe),
	}
	s.srv = core.NewServer(proc, s.store, s, opts...)
	if err := s.srv.Start(); err != nil {
		return nil, err
	}
	if err := proc.SetPid(kernel.ServicePipe, proc.PID(), kernel.ScopeBoth); err != nil {
		return nil, err
	}
	return s, nil
}

// PID returns the server's process identifier.
func (s *Server) PID() kernel.PID { return s.proc.PID() }

// Err reports why the server stopped serving (see core.Server.Err).
func (s *Server) Err() error { return s.srv.Err() }

// RootPair returns the server's single context.
func (s *Server) RootPair() core.ContextPair { return s.srv.Pair(core.CtxDefault) }

// Count returns the number of live pipes.
func (s *Server) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pipes)
}

func describe(p *pipe) proto.Descriptor {
	return proto.Descriptor{
		Tag:          proto.TagPipe,
		ObjectID:     p.id,
		Name:         p.name,
		Size:         uint32(len(p.buf)),
		Perms:        proto.PermRead | proto.PermWrite,
		TypeSpecific: [2]uint32{uint32(p.readers), uint32(p.writers)},
	}
}

// HandleNamed implements core.Handler.
func (s *Server) HandleNamed(req *core.Request, res *core.Resolution) *proto.Message {
	switch req.Msg.Op {
	case proto.OpCreateInstance:
		mode := proto.OpenMode(req.Msg)
		if mode&proto.ModeDirectory != 0 {
			if _, err := res.ContextOf(); err != nil {
				return core.ErrorReplyMsg(err)
			}
			pattern, err := proto.DirPattern(req.Msg)
			if err != nil {
				return core.ErrorReplyMsg(err)
			}
			return s.openDirectory(req.Proc(), res.Name, pattern)
		}
		if res.Entry == nil {
			if mode&proto.ModeCreate == 0 {
				return core.ErrorReplyMsg(proto.ErrNotFound)
			}
			return s.create(res.Last, mode)
		}
		if res.Entry.Object == nil {
			return core.ErrorReplyMsg(proto.ErrNotAContext)
		}
		return s.openPipe(res.Entry.Object.ID, res.Last, mode)

	case proto.OpQueryObject:
		if res.Entry == nil || res.Entry.Object == nil {
			return core.ErrorReplyMsg(proto.ErrNotFound)
		}
		s.mu.Lock()
		p := s.pipes[res.Entry.Object.ID]
		var d proto.Descriptor
		if p != nil {
			d = describe(p)
		}
		s.mu.Unlock()
		if p == nil {
			return core.ErrorReplyMsg(proto.ErrNotFound)
		}
		req.Proc().ChargeCompute(req.Proc().Kernel().Model().DescriptorFabricateCost)
		reply := core.OkReply()
		reply.Segment = d.AppendEncoded(nil)
		return reply

	case proto.OpRemoveObject:
		if res.Entry == nil || res.Entry.Object == nil {
			return core.ErrorReplyMsg(proto.ErrNotFound)
		}
		s.mu.Lock()
		delete(s.pipes, res.Entry.Object.ID)
		s.mu.Unlock()
		if err := s.store.Unbind(core.CtxDefault, res.Last); err != nil {
			return core.ErrorReplyMsg(err)
		}
		return core.OkReply()

	default:
		return core.ErrorReplyMsg(proto.ErrIllegalRequest)
	}
}

// HandleOp implements core.Handler.
func (s *Server) HandleOp(req *core.Request) *proto.Message {
	if reply := s.reg.HandleOp(req.Proc(), req.Msg); reply != nil {
		return reply
	}
	return core.ErrorReplyMsg(proto.ErrIllegalRequest)
}

func (s *Server) create(name string, mode uint32) *proto.Message {
	s.mu.Lock()
	s.next++
	p := &pipe{id: s.next, name: name, capacity: DefaultCapacity}
	s.pipes[p.id] = p
	s.mu.Unlock()
	if err := s.store.Bind(core.CtxDefault, name, core.ObjectEntry(proto.TagPipe, p.id)); err != nil {
		s.mu.Lock()
		delete(s.pipes, p.id)
		s.mu.Unlock()
		return core.ErrorReplyMsg(err)
	}
	return s.openPipe(p.id, name, mode)
}

func (s *Server) openPipe(id uint32, name string, mode uint32) *proto.Message {
	s.mu.Lock()
	p := s.pipes[id]
	if p != nil {
		if mode&proto.ModeRead != 0 {
			p.readers++
		}
		if mode&(proto.ModeWrite|proto.ModeAppend) != 0 {
			p.writers++
		}
	}
	s.mu.Unlock()
	if p == nil {
		return core.ErrorReplyMsg(proto.ErrNotFound)
	}
	iid, err := s.reg.Open(&pipeInstance{s: s, p: p, mode: mode}, name)
	if err != nil {
		return core.ErrorReplyMsg(err)
	}
	inst, _ := s.reg.Get(iid)
	info := inst.Info()
	info.ID = iid
	reply := core.OkReply()
	proto.SetInstanceInfo(reply, info)
	proto.SetInstanceOwner(reply, uint32(s.proc.PID()))
	return reply
}

func (s *Server) openDirectory(p *kernel.Process, name, pattern string) *proto.Message {
	s.mu.Lock()
	ids := make([]uint32, 0, len(s.pipes))
	for id := range s.pipes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	records := make([]proto.Descriptor, 0, len(ids))
	for _, id := range ids {
		records = append(records, describe(s.pipes[id]))
	}
	s.mu.Unlock()
	records = core.FilterRecords(records, pattern)
	model := p.Kernel().Model()
	p.ChargeCompute(time.Duration(len(records)) * model.DescriptorFabricateCost)
	iid, err := s.reg.Open(vio.NewDirectoryInstance(records, nil), name)
	if err != nil {
		return core.ErrorReplyMsg(err)
	}
	inst, _ := s.reg.Get(iid)
	info := inst.Info()
	info.ID = iid
	reply := core.OkReply()
	proto.SetInstanceInfo(reply, info)
	proto.SetInstanceOwner(reply, uint32(s.proc.PID()))
	return reply
}

// pipeInstance adapts a pipe end to the V I/O instance interface.
type pipeInstance struct {
	s    *Server
	p    *pipe
	mode uint32
}

func (pi *pipeInstance) Info() proto.InstanceInfo {
	pi.s.mu.Lock()
	defer pi.s.mu.Unlock()
	return proto.InstanceInfo{
		SizeBytes: uint32(len(pi.p.buf)),
		BlockSize: vio.DefaultBlockSize,
		Flags:     proto.ModeRead | proto.ModeWrite,
	}
}

// ReadAt drains the pipe; offsets are meaningless on a stream. An empty
// open pipe answers Retry; an empty closed pipe answers end-of-file.
func (pi *pipeInstance) ReadAt(_ *kernel.Process, _ int64, buf []byte) (int, error) {
	pi.s.mu.Lock()
	defer pi.s.mu.Unlock()
	p := pi.p
	if len(p.buf) == 0 {
		if p.closed {
			return 0, proto.ErrEndOfFile
		}
		return 0, fmt.Errorf("%w: pipe empty", proto.ErrRetry)
	}
	n := copy(buf, p.buf)
	p.buf = p.buf[n:]
	return n, nil
}

// WriteAt appends to the pipe; a full pipe answers Retry.
func (pi *pipeInstance) WriteAt(_ *kernel.Process, _ int64, data []byte) (int, error) {
	pi.s.mu.Lock()
	defer pi.s.mu.Unlock()
	p := pi.p
	if p.closed {
		return 0, fmt.Errorf("%w: pipe closed", proto.ErrEndOfFile)
	}
	room := p.capacity - len(p.buf)
	if room <= 0 {
		return 0, fmt.Errorf("%w: pipe full", proto.ErrRetry)
	}
	if len(data) > room {
		data = data[:room]
	}
	p.buf = append(p.buf, data...)
	return len(data), nil
}

// Release closes this end; when the last writer goes, the pipe drains to
// EOF for readers.
func (pi *pipeInstance) Release() {
	pi.s.mu.Lock()
	defer pi.s.mu.Unlock()
	if pi.mode&proto.ModeRead != 0 && pi.p.readers > 0 {
		pi.p.readers--
	}
	if pi.mode&(proto.ModeWrite|proto.ModeAppend) != 0 && pi.p.writers > 0 {
		pi.p.writers--
		if pi.p.writers == 0 {
			pi.p.closed = true
		}
	}
}

var (
	_ vio.Instance = (*pipeInstance)(nil)
	_ core.Handler = (*Server)(nil)
)
